//! Schedule-driven orchestration: runs an `rtcm-sim` [`FaultSchedule`]
//! against real OS processes.
//!
//! The deterministic federation simulator and this harness consume the
//! *same* serde schedule format (see `rtcm_sim::fault`): a time-sorted
//! list of primitive actions. The simulator interprets every action in
//! virtual time; this runner maps the subset with a physical analogue
//! onto a real cluster — one coordinator process, N member processes,
//! each member bridged through its own [`FaultProxy`] so partitions can
//! be injected per link:
//!
//! | action            | physical interpretation                        |
//! |-------------------|------------------------------------------------|
//! | `Partition`/`Heal`| blackhole/restore the member's proxy (link to the coordinator) |
//! | `Crash`           | SIGKILL the member, deregister its vote        |
//! | `Restart`         | spawn a fresh member on a fresh bridge         |
//! | `Swap`            | coordinator runs a two-phase reconfiguration   |
//! | `Hold`            | the member's `hold` verb                       |
//! | `SkewClock`/`DriftClock` | **skipped** (wall clocks are not injectable) |
//!
//! Skipped actions are reported, never silently dropped. Event times are
//! interpreted on the orchestrator's wall clock; a blocking `swap` may
//! push later events past their nominal instant, which preserves order —
//! the property the safety contract cares about.

use std::time::{Duration, Instant};

use rtcm_sim::{FaultAction, FaultSchedule};

use crate::process::NodeProc;
use crate::protocol::Command;
use crate::proxy::FaultProxy;

/// The outcome of one `Swap` action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapOutcome {
    /// Target configuration label.
    pub target: String,
    /// `true` when the quorum committed.
    pub committed: bool,
    /// Abort reason (e.g. `"AckTimeout"`) when it did not.
    pub reason: Option<String>,
}

impl SwapOutcome {
    /// A compact form for cross-substrate comparison:
    /// `commit:<label>` or `abort:<reason>`.
    #[must_use]
    pub fn key(&self) -> String {
        if self.committed {
            format!("commit:{}", self.target)
        } else {
            format!("abort:{}", self.reason.as_deref().unwrap_or("?"))
        }
    }
}

/// What a schedule run produced.
#[derive(Debug, Clone, Default)]
pub struct ScheduleOutcome {
    /// One entry per executed `Swap`, in schedule order.
    pub swaps: Vec<SwapOutcome>,
    /// Actions with no physical analogue in this topology, skipped.
    pub skipped: Vec<String>,
    /// The coordinator's configuration label after the last action.
    pub final_label: String,
    /// Each live member's witnessed commit labels, in witness order.
    pub member_commits: Vec<Vec<String>>,
}

/// One member's slot in the cluster: its process and the proxy carrying
/// its bridge. `None` while crashed.
struct MemberSlot {
    proc: Option<NodeProc>,
    proxy: Option<FaultProxy>,
}

/// A real cluster driven by a [`FaultSchedule`].
///
/// Host numbering matches the schedule's: host 0 is the coordinator,
/// hosts `1..=members` are voting members.
pub struct ScheduleRunner {
    node_bin: String,
    fence_timeout_ms: String,
    coord: NodeProc,
    members: Vec<MemberSlot>,
}

impl ScheduleRunner {
    /// Launches a coordinator and `members` voting members, each bridged
    /// through its own fault proxy. `node_bin` is the `cluster_node`
    /// binary path (`env!("CARGO_BIN_EXE_cluster_node")` in tests);
    /// `ack_timeout_ms` is the coordinator's prepare deadline and
    /// `fence_timeout_ms` the members' fence expiry.
    pub fn launch(
        node_bin: &str,
        members: u16,
        ack_timeout_ms: u64,
        fence_timeout_ms: u64,
    ) -> std::io::Result<Self> {
        let ack = ack_timeout_ms.to_string();
        let coord = NodeProc::spawn(node_bin, &["coordinator", &ack])
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut runner = ScheduleRunner {
            node_bin: node_bin.to_string(),
            fence_timeout_ms: fence_timeout_ms.to_string(),
            coord,
            members: Vec::new(),
        };
        for _ in 0..members {
            let slot = runner.spawn_member()?;
            runner.members.push(slot);
        }
        Ok(runner)
    }

    /// Spawns one member, bridges it through a fresh proxy and registers
    /// its vote at the coordinator.
    fn spawn_member(&mut self) -> std::io::Result<MemberSlot> {
        let fence = self.fence_timeout_ms.clone();
        let mut member = NodeProc::spawn(&self.node_bin, &["member", &fence])
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let port =
            self.coord.expect_ok(&Command::verb("listen")).port.expect("listen returns a port");
        let proxy = FaultProxy::spawn(format!("127.0.0.1:{port}").parse().unwrap())?;
        let mut connect = Command::verb("connect");
        connect.addr = Some(proxy.addr().to_string());
        member.expect_ok(&connect);
        let mut expect = Command::verb("expect-voter");
        expect.host_id = Some(member.host_id);
        self.coord.expect_ok(&expect);
        Ok(MemberSlot { proc: Some(member), proxy: Some(proxy) })
    }

    /// Executes the schedule (sorted by `at_ms`, wall clock) and collects
    /// the outcome. Panics on actions that are malformed for this
    /// topology (an unknown host index); merely-inapplicable actions are
    /// recorded in [`ScheduleOutcome::skipped`].
    pub fn run(&mut self, schedule: &FaultSchedule) -> ScheduleOutcome {
        let mut outcome = ScheduleOutcome::default();
        let start = Instant::now();
        for ev in schedule.sorted() {
            let due = Duration::from_millis(ev.at_ms);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            self.apply(&ev.action, &mut outcome);
        }
        outcome.final_label = self
            .coord
            .expect_ok(&Command::verb("services"))
            .label
            .expect("coordinator reports its label");
        outcome.member_commits = self.member_commits();
        outcome
    }

    /// Each live member's witnessed commit labels right now. Commits
    /// cross the bridge asynchronously after the coordinator's swap
    /// returns, so callers comparing against a committed sequence should
    /// poll this until it settles.
    pub fn member_commits(&mut self) -> Vec<Vec<String>> {
        self.members
            .iter_mut()
            .filter_map(|slot| slot.proc.as_mut())
            .map(|m| m.expect_ok(&Command::verb("report")).commits.expect("member reports commits"))
            .collect()
    }

    fn member_mut(&mut self, host: u16) -> &mut MemberSlot {
        assert!(host >= 1, "host 0 is the coordinator");
        self.members
            .get_mut(host as usize - 1)
            .unwrap_or_else(|| panic!("schedule names unknown host {host}"))
    }

    fn apply(&mut self, action: &FaultAction, outcome: &mut ScheduleOutcome) {
        match action {
            FaultAction::Partition { a, b } | FaultAction::Heal { a, b } => {
                let down = matches!(action, FaultAction::Partition { .. });
                // The physical topology is a star: only coordinator↔member
                // links exist, so member↔member partitions have no analogue.
                let member = match (a, b) {
                    (0, m) | (m, 0) => *m,
                    _ => {
                        outcome.skipped.push(format!("{action:?}: no member-to-member links"));
                        return;
                    }
                };
                match self.member_mut(member).proxy.as_ref() {
                    Some(proxy) => proxy.set_partitioned(down),
                    None => outcome.skipped.push(format!("{action:?}: host {member} is down")),
                }
            }
            FaultAction::Crash { host } => {
                let slot = self.member_mut(*host);
                let Some(mut proc) = slot.proc.take() else {
                    outcome.skipped.push(format!("{action:?}: already down"));
                    return;
                };
                let host_id = proc.host_id;
                proc.kill();
                if let Some(proxy) = slot.proxy.take() {
                    proxy.shutdown();
                }
                // Deregister the corpse so later swaps see the quorum the
                // simulator's restart path converges to.
                let mut drop = Command::verb("drop-voter");
                drop.host_id = Some(host_id);
                self.coord.expect_ok(&drop);
            }
            FaultAction::Restart { host } => {
                if self.member_mut(*host).proc.is_some() {
                    outcome.skipped.push(format!("{action:?}: already up"));
                    return;
                }
                let slot = self.spawn_member().expect("restart spawns a member");
                *self.member_mut(*host) = slot;
            }
            FaultAction::Swap { host, target } => {
                if *host != 0 {
                    outcome
                        .skipped
                        .push(format!("{action:?}: only host 0 coordinates in this topology"));
                    return;
                }
                let mut cmd = Command::verb("swap");
                cmd.target = Some(target.clone());
                let reply = self.coord.request(&cmd).expect("coordinator alive");
                outcome.swaps.push(SwapOutcome {
                    target: target.clone(),
                    committed: reply.ok,
                    reason: reply.error,
                });
            }
            FaultAction::Hold { host, value } => {
                let slot = self.member_mut(*host);
                match slot.proc.as_mut() {
                    Some(m) => {
                        let mut cmd = Command::verb("hold");
                        cmd.value = Some(*value);
                        m.expect_ok(&cmd);
                    }
                    None => outcome.skipped.push(format!("{action:?}: host is down")),
                }
            }
            FaultAction::SkewClock { .. } | FaultAction::DriftClock { .. } => {
                outcome.skipped.push(format!("{action:?}: wall clocks are not injectable"));
            }
        }
    }

    /// Tears the cluster down (children exit, proxies stop).
    pub fn shutdown(mut self) {
        for slot in &mut self.members {
            if let Some(m) = slot.proc.take() {
                m.shutdown();
            }
            if let Some(p) = slot.proxy.take() {
                p.shutdown();
            }
        }
        self.coord.shutdown();
    }
}
