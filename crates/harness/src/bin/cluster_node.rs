//! One node of a multi-process rtcm cluster, driven over stdin/stdout by
//! the harness orchestrator (see `rtcm_harness::protocol`).
//!
//! Two roles:
//!
//! - `coordinator <ack_timeout_ms>` — runs a full [`rtcm_rt::System`]
//!   (2 processors, one aperiodic task) and initiates reconfigurations.
//! - `member <fence_timeout_ms>` — runs a bare federation with a
//!   [`rtcm_rt::QuorumMember`] voting on bridged reconfigurations.
//!
//! On startup the process prints `READY {reply-json}` with its federation
//! host id; afterwards each stdin line is one command and produces exactly
//! one stdout line. stdin EOF means exit.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use rtcm_config::{configure_with, WorkloadSpec};
use rtcm_core::task::TaskId;
use rtcm_events::{remote, topics, BridgeHandle, Federation, Latency, NodeId};
use rtcm_harness::protocol::{Command, Reply, READY_PREFIX};
use rtcm_rt::{QuorumMember, QuorumOptions, ReconfigureError, RtOptions, System};
use rtcm_telemetry::{Exposition, OamRoutes, OamServer};

/// The workload every coordinator runs: small, but real — jobs flow
/// through admission control while swaps are in flight.
const SPEC: &str = "workload w\nprocessors 2\n\
                    task t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n";

const QUIESCE: Duration = Duration::from_secs(20);

/// Reconfig traffic bridged between cluster hosts: phases outward, acks
/// back.
fn bridge_topics() -> Vec<rtcm_events::Topic> {
    vec![topics::RECONFIG, topics::RECONFIG_ACK]
}

fn emit(reply: &Reply) {
    let line = serde_json::to_string(reply).expect("replies serialize");
    let mut out = std::io::stdout();
    writeln!(out, "{line}").expect("stdout open");
    out.flush().expect("stdout flush");
}

fn emit_ready(host_id: u64) {
    let mut reply = Reply::success();
    reply.host_id = Some(host_id);
    let line = serde_json::to_string(&reply).expect("replies serialize");
    let mut out = std::io::stdout();
    writeln!(out, "{READY_PREFIX}{line}").expect("stdout open");
    out.flush().expect("stdout flush");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let role = args.get(1).map(String::as_str).unwrap_or("");
    let timeout_ms: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(500);
    match role {
        "coordinator" => run_coordinator(Duration::from_millis(timeout_ms)),
        "member" => run_member(Duration::from_millis(timeout_ms)),
        other => {
            eprintln!("cluster_node: unknown role {other:?} (want coordinator|member)");
            std::process::exit(2);
        }
    }
}

fn run_coordinator(ack_timeout: Duration) {
    let deployment = configure_with(
        &WorkloadSpec::parse(SPEC).expect("baked-in spec is valid"),
        "J_N_N".parse().expect("baked-in combo is valid"),
    )
    .expect("baked-in deployment configures");
    let mut options = RtOptions::fast();
    options.reconfig_ack_timeout = ack_timeout;
    let system = System::launch(&deployment, options).expect("system launches");
    let mut bridges: Vec<BridgeHandle> = Vec::new();
    let mut oam: Option<OamServer> = None;
    emit_ready(system.host_id());

    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let cmd: Command = match serde_json::from_str(&line) {
            Ok(cmd) => cmd,
            Err(e) => {
                emit(&Reply::failure(format!("bad command: {e}")));
                continue;
            }
        };
        let reply = match cmd.cmd.as_str() {
            // Open a TCP gateway on an app node (node 1 = processor 0):
            // the manager node publishes the reconfig phases, so they are
            // forwarded outward; acks flow back in.
            "listen" => {
                match remote::listen(system.federation(), NodeId(1), "127.0.0.1:0", bridge_topics())
                {
                    Ok((addr, handle)) => {
                        bridges.push(handle);
                        let mut reply = Reply::success();
                        reply.port = Some(addr.port());
                        reply
                    }
                    Err(e) => Reply::failure(format!("listen: {e}")),
                }
            }
            "expect-voter" => match cmd.host_id {
                Some(host) => {
                    system.register_remote_voter(host);
                    Reply::success()
                }
                None => Reply::failure("expect-voter needs host_id"),
            },
            "drop-voter" => match cmd.host_id {
                Some(host) => {
                    system.deregister_remote_voter(host);
                    Reply::success()
                }
                None => Reply::failure("drop-voter needs host_id"),
            },
            "swap" => {
                let Some(target) = cmd.target.as_deref() else {
                    emit(&Reply::failure("swap needs target"));
                    continue;
                };
                match target.parse() {
                    Err(e) => Reply::failure(format!("bad target: {e:?}")),
                    Ok(target) => match system.reconfigure(target) {
                        Ok(report) => {
                            let mut reply = Reply::success();
                            reply.label = Some(report.handover.to.label());
                            reply
                        }
                        Err(ReconfigureError::Aborted { reason, acked, expected }) => {
                            let mut reply = Reply::failure(format!("{reason:?}"));
                            reply.acks = Some(acked as u64);
                            reply.nacks = Some(expected as u64);
                            reply.label = Some(system.services().label());
                            reply
                        }
                        Err(e) => Reply::failure(format!("{e:?}")),
                    },
                }
            }
            "submit" => {
                let count = cmd.count.unwrap_or(1);
                let mut reply = Reply::success();
                for seq in 0..count {
                    if let Err(e) = system.submit(TaskId(0), seq) {
                        reply = Reply::failure(format!("submit: {e:?}"));
                        break;
                    }
                }
                if reply.ok && !system.quiesce(QUIESCE) {
                    reply = Reply::failure("quiesce timed out");
                }
                reply
            }
            "services" => {
                let mut reply = Reply::success();
                reply.label = Some(system.services().label());
                reply
            }
            "report" => {
                let mut reply = Reply::success();
                reply.label = Some(system.services().label());
                reply.report = Some(system.stats());
                reply
            }
            // Mount the OAM scrape endpoint (idempotent: repeated commands
            // reply with the already-bound port).
            "oam" => match &oam {
                Some(server) => {
                    let mut reply = Reply::success();
                    reply.port = Some(server.addr().port());
                    reply
                }
                None => match system.serve_oam("127.0.0.1:0") {
                    Ok(server) => {
                        let mut reply = Reply::success();
                        reply.port = Some(server.addr().port());
                        oam = Some(server);
                        reply
                    }
                    Err(e) => Reply::failure(format!("oam: {e}")),
                },
            },
            "exit" => {
                emit(&Reply::success());
                break;
            }
            other => Reply::failure(format!("unknown command {other:?}")),
        };
        emit(&reply);
    }
    drop(oam);
    drop(bridges);
    let _ = system.shutdown();
}

fn run_member(fence_timeout: Duration) {
    // A bare 2-node federation: node 0 is the bridge gateway, node 1
    // hosts the quorum member (mirroring the in-process bridged tests).
    let federation = Federation::new(2, Latency::None, 0);
    let member = Arc::new(
        QuorumMember::attach(&federation, NodeId(1), QuorumOptions { fence_timeout })
            .expect("member attaches"),
    );
    let mut bridges: Vec<BridgeHandle> = Vec::new();
    let mut oam: Option<OamServer> = None;
    emit_ready(member.host_id());

    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let cmd: Command = match serde_json::from_str(&line) {
            Ok(cmd) => cmd,
            Err(e) => {
                emit(&Reply::failure(format!("bad command: {e}")));
                continue;
            }
        };
        let reply = match cmd.cmd.as_str() {
            "connect" => match cmd.addr.as_deref() {
                Some(addr) => {
                    match remote::connect(&federation, NodeId(0), addr, bridge_topics()) {
                        Ok(handle) => {
                            bridges.push(handle);
                            Reply::success()
                        }
                        Err(e) => Reply::failure(format!("connect: {e}")),
                    }
                }
                None => Reply::failure("connect needs addr"),
            },
            "hold" => {
                member.set_holding(cmd.value.unwrap_or(true));
                Reply::success()
            }
            "report" => {
                let stats = federation.stats();
                let mut reply = Reply::success();
                reply.acks = Some(member.ack_count());
                reply.nacks = Some(member.nack_count());
                reply.fenced = Some(member.is_fenced());
                reply.commits = Some(member.observed_commits().iter().map(|c| c.label()).collect());
                reply.bridge_rx_errors = Some(stats.bridge_rx_errors);
                reply.bridge_disconnects = Some(stats.bridge_disconnects);
                reply
            }
            // Mount the member's own OAM endpoint: vote counters and
            // bridge health as an exposition, plus the trace buffer of
            // foreign reconfiguration phases it witnessed (same swap
            // trace ids as the coordinator's dump).
            "oam" => match &oam {
                Some(server) => {
                    let mut reply = Reply::success();
                    reply.port = Some(server.addr().port());
                    reply
                }
                None => {
                    let channel = federation.handle(NodeId(0)).expect("node 0 exists");
                    let expo_member = Arc::clone(&member);
                    let trace = Arc::clone(member.trace());
                    let routes = OamRoutes {
                        metrics: Arc::new(move || member_exposition(&expo_member, &channel)),
                        trace: Arc::new(move || trace.dump_json_lines()),
                    };
                    match OamServer::start("127.0.0.1:0", routes) {
                        Ok(server) => {
                            let mut reply = Reply::success();
                            reply.port = Some(server.addr().port());
                            oam = Some(server);
                            reply
                        }
                        Err(e) => Reply::failure(format!("oam: {e}")),
                    }
                }
            },
            "exit" => {
                emit(&Reply::success());
                break;
            }
            other => Reply::failure(format!("unknown command {other:?}")),
        };
        emit(&reply);
    }
    drop(oam);
    drop(bridges);
    drop(member);
}

/// The member role's scrape page: quorum vote counters, fence state, and
/// the bridge-health counters of the federation it represents.
fn member_exposition(member: &QuorumMember, channel: &rtcm_events::ChannelHandle) -> String {
    let stats = channel.federation_stats();
    let mut expo = Exposition::new();
    expo.info(
        "rtcm_build_info",
        "Build and configuration metadata.",
        &[
            ("version".into(), env!("CARGO_PKG_VERSION").into()),
            ("role".into(), "quorum-member".into()),
            ("host".into(), member.host_id().to_string()),
        ],
    );
    expo.counter("rtcm_member_acks_total", "Foreign prepares acked.", member.ack_count());
    expo.counter("rtcm_member_nacks_total", "Foreign prepares vetoed.", member.nack_count());
    expo.counter(
        "rtcm_member_commits_total",
        "Foreign commits witnessed.",
        member.observed_commits().len() as u64,
    );
    expo.gauge(
        "rtcm_member_fenced",
        "1 while fenced for a pending foreign swap.",
        if member.is_fenced() { 1.0 } else { 0.0 },
    );
    expo.counter("rtcm_events_published_total", "Events published.", stats.events_published);
    expo.counter(
        "rtcm_events_delivered_total",
        "Per-subscriber deliveries.",
        stats.local_deliveries,
    );
    expo.counter("rtcm_remote_parcels_total", "Cross-node parcels.", stats.remote_parcels);
    expo.counter("rtcm_bridge_rx_errors_total", "Corrupt bridge frames.", stats.bridge_rx_errors);
    expo.counter("rtcm_bridge_disconnects_total", "Bridge links closed.", stats.bridge_disconnects);
    expo.counter(
        "rtcm_bridge_tx_dropped_total",
        "Outbound events dropped at bridges.",
        stats.bridge_tx_dropped,
    );
    expo.finish()
}
