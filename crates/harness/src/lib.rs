//! Multi-process cluster harness for rtcm.
//!
//! Everything else in the workspace exercises the middleware in-process:
//! the simulator is single-threaded, the runtime tests run one `System`
//! per test, and even the bridged-host tests keep both federations inside
//! one address space. This crate closes the remaining gap to the paper's
//! deployment model — *separate* middleware processes cooperating over
//! TCP — and weaponises it: an orchestrator (a normal `cargo test`
//! integration test) spawns real OS processes running real [`rtcm_rt`]
//! systems, wires them together through the bridge, and injects faults
//! while two-phase reconfigurations are in flight.
//!
//! The pieces:
//!
//! - [`protocol`] — the JSON-line command protocol between the
//!   orchestrator and `cluster_node` children.
//! - [`process`] — [`process::NodeProc`], spawning and driving one child.
//! - [`proxy`] — [`proxy::FaultProxy`], a frame-aware TCP
//!   man-in-the-middle that drops, delays, reorders, corrupts, and
//!   truncates wire frames on command.
//! - [`schedule`] — [`schedule::ScheduleRunner`], which executes an
//!   `rtcm-sim` `FaultSchedule` (the federation simulator's campaign
//!   format) against a real cluster, so one schedule can be cross-checked
//!   on both substrates.
//!
//! The fault campaigns themselves live in `tests/campaigns.rs`; each one
//! asserts the PR 3/4 safety contract end-to-end across process
//! boundaries: configuration swaps are all-or-nothing (no host ever
//! applies a phase the quorum didn't commit) and every abort is accounted
//! for in `reconfig_abort_reasons`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;
pub mod protocol;
pub mod proxy;
pub mod schedule;

pub use process::{NodeProc, ProcError};
pub use protocol::{Command, Reply, READY_PREFIX};
pub use proxy::{Direction, FaultProxy};
pub use schedule::{ScheduleOutcome, ScheduleRunner, SwapOutcome};
