//! Shared fixture for the `micro_govern` bench and its smoke tests: a
//! deterministic synthetic load trace (alternating collapse / recovery
//! blocks) and policies of configurable width, so the per-window cost of
//! policy evaluation can be measured against rule count.

use rtcm_core::govern::{GovernorPolicy, GovernorRule, Metric, Trigger, WindowMetrics};
use rtcm_core::strategy::ServiceConfig;

/// Cycle of targets for generated rules (all §4.5-valid).
const TARGETS: [&str; 4] = ["T_T_T", "J_J_J", "J_N_N", "T_N_T"];

/// A policy with `rules` threshold rules cycling over the sensed metrics
/// and valid targets. The first two rules mirror the canonical
/// defensive/relax pair; the rest widen the evaluation loop without ever
/// firing first (their thresholds sit behind the leaders').
#[must_use]
pub fn governor_policy(rules: usize) -> GovernorPolicy {
    let mut policy = GovernorPolicy::new().cooldown(3);
    for i in 0..rules {
        let target: ServiceConfig = TARGETS[i % TARGETS.len()].parse().expect("static label");
        let (metric, trigger) = match i % 4 {
            0 => (Metric::AcceptedRatio, Trigger::Below(0.3)),
            1 => (Metric::AubSlack, Trigger::Above(0.5)),
            2 => (Metric::Imbalance, Trigger::Above(0.8)),
            _ => (Metric::Deferred, Trigger::Above(1e6)),
        };
        policy = policy.rule(
            GovernorRule::new(format!("rule-{i}"), metric, trigger, 2, target).min_arrivals(1),
        );
    }
    policy
}

/// A deterministic synthetic window stream: blocks of `block` collapsed
/// windows (accepted ratio 0.1, low slack) alternating with `block`
/// recovered windows (ratio 1.0, high slack) — the load shape that drives
/// both the defensive and the relax rule.
#[must_use]
pub fn metrics_stream(windows: usize, block: usize) -> Vec<WindowMetrics> {
    (0..windows)
        .map(|i| {
            let collapsed = (i / block.max(1)).is_multiple_of(2);
            let ratio = if collapsed { 0.1 } else { 1.0 };
            WindowMetrics {
                arrived_jobs: 50,
                arrived_utilization: 5.0,
                released_utilization: 5.0 * ratio,
                accepted_ratio: ratio,
                ir_reports: u64::from(!collapsed),
                deferred: 0,
                aub_slack: if collapsed { 0.05 } else { 0.8 },
                imbalance: if collapsed { 0.6 } else { 0.1 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_core::govern::Governor;

    #[test]
    fn fixture_policies_validate_at_every_width() {
        for rules in [1, 2, 16, 128] {
            let policy = governor_policy(rules);
            assert_eq!(policy.rules.len(), rules);
            policy.validate().unwrap();
            assert!(Governor::new(policy).is_ok());
        }
    }

    #[test]
    fn stream_alternates_blocks() {
        let stream = metrics_stream(16, 4);
        assert_eq!(stream.len(), 16);
        assert!(stream[0].accepted_ratio < 0.5);
        assert!(stream[4].accepted_ratio > 0.9);
        assert_eq!(stream[0], stream[1]);
    }
}
