//! Shared fixtures for the admission-scaling experiment: incremental vs.
//! brute-force AUB admission at large current-set sizes.
//!
//! The `micro_admission` bench arms and the `smoke.rs` quick test both
//! build their controllers here so the measured topology and the tested
//! topology cannot drift apart. The fixture loads `n` three-stage entries
//! through [`AdmissionController::apply_remote_commit`] — the one path
//! that grows the current set without running (and being capped by) the
//! admission test — sized so that every processor sits near synthetic
//! utilization [`TARGET_PROC_UTILIZATION`] and a steady-state probe is
//! *accepted*: an accepted decision exercises the full tentative-add →
//! system-check → commit path on both admission modes.
//!
//! Honest-ablation caveat: the brute-force arm measures
//! `AdmissionMode::BruteForce` of the *current* controller, which still
//! maintains the incremental bookkeeping (so modes stay switchable), not
//! the pre-index controller this design replaced. The bookkeeping is
//! bounded above by the incremental arm's own total, so cross-arm ratios
//! understate the brute arm's scan cost by at most that much.

use rtcm_core::admission::{AdmissionController, AdmissionMode, Decision};
use rtcm_core::balance::Assignment;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId, TaskSpec};
use rtcm_core::time::{Duration, Time};

/// Subtasks per synthetic background task (and per probe).
pub const STAGES: u16 = 3;

/// Per-processor synthetic utilization the background load is sized to.
/// Low enough that a 3-stage probe passes its own bound
/// (`3·f(0.25) ≈ 0.89 < 1`) and no background entry violates it, so every
/// probe decision does the full amount of admission work.
pub const TARGET_PROC_UTILIZATION: f64 = 0.25;

/// Deadline of every background entry: far past any virtual time the
/// steady-state probe loop reaches, so the background set never expires
/// mid-measurement.
const BACKGROUND_HORIZON: Duration = Duration::from_secs(100_000);

/// A background task: `STAGES` subtasks round-robined over the processors
/// starting at `base`, each contributing `utilization` of the deadline.
fn background_task(id: u32, base: u16, procs: u16, utilization: f64) -> TaskSpec {
    let exec = BACKGROUND_HORIZON.mul_f64(utilization.max(1e-9));
    let mut builder = TaskBuilder::aperiodic(TaskId(id)).deadline(BACKGROUND_HORIZON);
    for j in 0..STAGES {
        builder = builder.subtask(exec, ProcessorId((base + j) % procs), []);
    }
    builder.build().expect("background tasks are valid")
}

/// The steady-state probes: `STAGES` stages on processors `0..STAGES` with
/// one replica each, a 1 ms deadline (so each probe has expired by the
/// next arrival 2 ms later) and negligible utilization.
///
/// Two variants with *different* execution times are returned; a
/// steady-state loop must alternate them. With identical consecutive
/// probes, the expiry of the previous probe and the tentative add of the
/// next would net each touched processor's utilization to exactly its old
/// value, and the net-delta funnel would skip the per-entry work the
/// bench is trying to measure.
#[must_use]
pub fn scaling_probes(procs: u16) -> [TaskSpec; 2] {
    [1u64, 3].map(|exec_us| {
        let mut builder = TaskBuilder::aperiodic(TaskId(u32::MAX - exec_us as u32))
            .deadline(Duration::from_millis(1));
        for j in 0..STAGES {
            builder = builder.subtask(
                Duration::from_micros(exec_us),
                ProcessorId(j % procs),
                [ProcessorId((j + 1) % procs)],
            );
        }
        builder.build().expect("probe is valid")
    })
}

/// A controller in `mode` pre-loaded with `n` background entries over
/// `procs` processors, every processor near [`TARGET_PROC_UTILIZATION`].
///
/// # Panics
///
/// Panics if the fixture ends up outside its design envelope (a processor
/// saturated or a violating entry) — that would silently change what the
/// bench measures.
#[must_use]
pub fn scaling_controller(n: u32, procs: u16, mode: AdmissionMode) -> AdmissionController {
    let cfg: ServiceConfig = "J_N_T".parse().expect("valid label");
    let mut ac =
        AdmissionController::with_mode(cfg, usize::from(procs), mode).expect("valid config");
    // Σ contributions = n · STAGES; target per-proc total = TARGET · procs.
    let utilization =
        TARGET_PROC_UTILIZATION * f64::from(procs) / (f64::from(n) * f64::from(STAGES));
    for i in 0..n {
        let task = background_task(i, (i % u32::from(procs)) as u16, procs, utilization);
        ac.apply_remote_commit(&task, 0, Time::ZERO, &Assignment::primaries(&task))
            .expect("background commits are valid");
    }
    assert_eq!(ac.current_entries() as u32, n);
    assert_eq!(ac.violating_entries(), 0, "fixture must not start over the bound");
    assert!(
        ac.ledger().utilizations().iter().all(|&u| u < 2.0 * TARGET_PROC_UTILIZATION),
        "fixture load spread out of envelope"
    );
    ac
}

/// Drives one steady-state probe arrival: advances virtual time by 2 ms
/// (expiring the previous probe) and offers the next probe job. Returns
/// the decision, which is always an accept within the fixture envelope.
pub fn probe_once(ac: &mut AdmissionController, probe: &TaskSpec, seq: u64, now: Time) -> Decision {
    ac.handle_arrival(probe, seq, now).expect("probe jobs are unique")
}

// ---------------------------------------------------------------------
// Sharded-plane scaling fixtures (the `admission_scaling` bench)
// ---------------------------------------------------------------------

/// Processors in the sharded-plane scaling host.
pub const SHARD_BENCH_PROCS: usize = 64;

/// Independent arrival streams, one per contiguous 8-processor block.
/// Blocks always nest inside shard groups for shard counts 1/2/4/8, so
/// every stream is single-homed under every measured layout.
pub const SHARD_BENCH_BLOCKS: usize = 8;

/// Distinct task specs cycled by each block stream (job `k` of a block
/// reuses spec `k % TASKS`, at sequence `k / TASKS`).
pub const SHARD_BENCH_TASKS_PER_BLOCK: usize = 16;

/// Deadline of each stream job. With one arrival per virtual millisecond
/// per stream, about ten entries are live per block at any instant —
/// enough churn to keep the expiry heap and inverted index honest, low
/// enough that every arrival is accepted (the work being compared is the
/// full tentative-add → system-check → commit path).
pub const SHARD_BENCH_DEADLINE: Duration = Duration::from_millis(10);

/// The task specs of one block's arrival stream: aperiodic single-stage
/// tasks whose primary and replica both live inside the block, rotating
/// over its eight processors.
///
/// # Panics
///
/// Panics if `block` is outside the fixture's [`SHARD_BENCH_BLOCKS`].
#[must_use]
pub fn shard_block_tasks(block: usize) -> Vec<TaskSpec> {
    assert!(block < SHARD_BENCH_BLOCKS, "block {block} out of range");
    let width = (SHARD_BENCH_PROCS / SHARD_BENCH_BLOCKS) as u16;
    let base = block as u16 * width;
    (0..SHARD_BENCH_TASKS_PER_BLOCK)
        .map(|i| {
            #[allow(clippy::cast_possible_truncation)]
            let id = (block * 1_000 + i) as u32;
            let primary = base + (i as u16 % width);
            let replica = base + ((i as u16 + 3) % width);
            TaskBuilder::aperiodic(TaskId(id))
                .deadline(SHARD_BENCH_DEADLINE)
                .subtask(Duration::from_millis(1), ProcessorId(primary), [ProcessorId(replica)])
                .build()
                .expect("stream tasks are valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_in_envelope_and_probe_accepts() {
        for mode in [AdmissionMode::Incremental, AdmissionMode::BruteForce] {
            let mut ac = scaling_controller(64, 8, mode);
            let probes = scaling_probes(8);
            let mut now = Time::ZERO;
            for seq in 0..10u64 {
                now = now.saturating_add(Duration::from_millis(2));
                let d = probe_once(&mut ac, &probes[(seq % 2) as usize], seq, now);
                assert!(d.is_accept(), "{mode}: probe {seq} rejected");
            }
            // Steady state: exactly one live probe entry on top of the
            // background set.
            assert_eq!(ac.current_entries(), 65);
        }
    }

    #[test]
    fn shard_block_tasks_are_block_local() {
        use rtcm_core::shard::ShardLayout;
        for shards in [1usize, 2, 4, 8] {
            let layout = ShardLayout::new(SHARD_BENCH_PROCS, shards);
            for block in 0..SHARD_BENCH_BLOCKS {
                for task in shard_block_tasks(block) {
                    let home = layout.home_of(&task);
                    assert!(home.is_some(), "{shards} shards: block {block} task spans shards");
                }
            }
        }
    }
}
