//! Shared fixture for the `micro_reconfig` bench arms and their smoke
//! coverage (`tests/smoke.rs`): a controller whose whole current set can
//! be drained into / reseeded from per-task reservations without ever
//! brushing the AUB bound, so the measurements isolate the ledger
//! handover itself.

use rtcm_core::admission::AdmissionController;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId, TaskSet, TaskSpec};
use rtcm_core::time::{Duration, Time};

/// `n` light periodic tasks spread over `procs` processors (total
/// synthetic utilization ~0.4 per processor, well under the AUB bound, so
/// every admission and every reseed succeeds and the benches measure the
/// handover, not rejection paths).
#[must_use]
pub fn reconfig_fixture(n: u32, procs: u16) -> (TaskSet, Vec<TaskSpec>) {
    let per_proc = (n / u32::from(procs)).max(1);
    // Keep each processor's total at ~0.4: exec = 0.4/per_proc of the
    // 1 s deadline.
    let exec_us = u64::from((400_000 / per_proc).max(1));
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| {
            let p = (i % u32::from(procs)) as u16;
            TaskBuilder::periodic(TaskId(i), Duration::from_secs(1))
                .subtask(
                    Duration::from_micros(exec_us),
                    ProcessorId(p),
                    [ProcessorId((p + 1) % procs)],
                )
                .build()
                .expect("bench tasks are valid")
        })
        .collect();
    (TaskSet::from_tasks(tasks.clone()).expect("unique ids"), tasks)
}

/// Controller running `config` with all `tasks` admitted at `Time::ZERO`.
///
/// # Panics
///
/// Panics if any fixture task fails admission (the fixture stays under
/// the bound by construction).
#[must_use]
pub fn loaded_reconfig_controller(
    config: &str,
    tasks: &[TaskSpec],
    procs: u16,
) -> AdmissionController {
    let cfg: ServiceConfig = config.parse().expect("static labels are valid");
    let mut ac = AdmissionController::new(cfg, usize::from(procs)).expect("valid combination");
    for task in tasks {
        assert!(
            ac.handle_arrival(task, 0, Time::ZERO).expect("unique arrivals").is_accept(),
            "fixture stays under the bound"
        );
    }
    ac
}
