//! Shared fixture for the `micro_wire` bench and its smoke tests: encode
//! helpers for the two bridge codecs (legacy length-prefixed JSON vs the
//! v1 binary frame) and a raw-sender → real-bridge receive harness, so
//! the bench compares the codecs on the exact path the TCP bridge runs.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rtcm_events::wire::{self, FrameDecoder};
use rtcm_events::{remote, EventReceiver, Federation, Latency, NodeId, Topic};

use crate::events::PAYLOAD;

/// The topic wire benchmarks publish on.
pub const WIRE_TOPIC: Topic = Topic(100);

/// Encodes `count` copies of the canonical payload as v1 binary frames.
#[must_use]
pub fn encode_binary(count: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(count * (PAYLOAD.len() + wire::FRAME_OVERHEAD));
    for _ in 0..count {
        wire::append_frame(&mut buf, WIRE_TOPIC, PAYLOAD).expect("payload under MAX_FRAME");
    }
    buf
}

/// Encodes `count` copies of the canonical payload as legacy JSON frames.
#[must_use]
pub fn encode_json(count: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    for _ in 0..count {
        wire::append_frame_json(&mut buf, WIRE_TOPIC, PAYLOAD).expect("payload under MAX_FRAME");
    }
    buf
}

/// Decodes a full frame stream and returns the number of frames (panics
/// on any fatal framing error — bench inputs are well-formed).
#[must_use]
pub fn decode_all(stream: &[u8]) -> usize {
    let mut decoder = FrameDecoder::new();
    decoder.extend(stream);
    let drained = decoder.drain();
    assert!(drained.fatal.is_none(), "bench streams are well-formed");
    assert_eq!(decoder.pending(), 0, "bench streams hold whole frames");
    drained.frames.len()
}

/// A live bridge endpoint fed by a raw TCP sender: a single-node
/// federation listening on localhost with one subscriber on
/// [`WIRE_TOPIC`], plus the connected raw socket. Writing pre-encoded
/// frames to [`BridgeRig::sender`] exercises the bridge's real read →
/// decode → republish path, whichever codec the bytes use.
pub struct BridgeRig {
    federation: Federation,
    rx: EventReceiver,
    /// The raw client socket; frames written here arrive at the bridge.
    pub sender: TcpStream,
    _server: rtcm_events::BridgeHandle,
}

impl BridgeRig {
    /// Binds a fresh bridge and connects the raw sender.
    #[must_use]
    pub fn new() -> Self {
        let federation = Federation::new(1, Latency::None, 0);
        let (addr, server) =
            remote::listen(&federation, NodeId(0), "127.0.0.1:0", vec![WIRE_TOPIC])
                .expect("loopback listen");
        let rx = federation.handle(NodeId(0)).expect("node 0 exists").subscribe(WIRE_TOPIC);
        let sender = TcpStream::connect(addr).expect("loopback connect");
        sender.set_nodelay(true).expect("loopback nodelay");
        BridgeRig { federation, rx, sender, _server: server }
    }

    /// Writes `stream` (a pre-encoded frame batch carrying `count`
    /// frames) to the bridge and blocks until all `count` events came out
    /// of the subscriber. Returns the receive-side wall time.
    pub fn pump(&mut self, stream: &[u8], count: usize) -> Duration {
        let start = Instant::now();
        self.sender.write_all(stream).expect("bridge accepts the stream");
        for _ in 0..count {
            self.rx.recv_timeout(Duration::from_secs(30)).expect("bridge republishes");
        }
        start.elapsed()
    }

    /// Receive-side counters (rx errors must stay zero during a bench).
    #[must_use]
    pub fn stats(&self) -> rtcm_events::FederationStats {
        self.federation.stats()
    }
}

impl Default for BridgeRig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_frames_are_smaller_than_json() {
        let binary = encode_binary(100);
        let json = encode_json(100);
        assert!(
            binary.len() < json.len(),
            "binary ({}) must beat JSON ({}) on the wire",
            binary.len(),
            json.len()
        );
        assert_eq!(decode_all(&binary), 100);
        assert_eq!(decode_all(&json), 100);
    }

    #[test]
    fn bridge_rig_round_trips_both_codecs() {
        let mut rig = BridgeRig::new();
        rig.pump(&encode_binary(32), 32);
        rig.pump(&encode_json(32), 32);
        let stats = rig.stats();
        assert_eq!(stats.bridge_rx_errors, 0);
        assert_eq!(stats.bridge_disconnects, 0);
    }
}
