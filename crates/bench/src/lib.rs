//! Shared experiment harness for the evaluation benches: runs the §7
//! experiments and formats the paper's tables/figures as text.
//!
//! Every figure/table bench (`cargo bench -p rtcm-bench`) funnels through
//! [`run_combo_experiment`], which replays identical task sets and arrival
//! traces across strategy combinations — the paper's methodology of running
//! the same ten task sets under each of the 15 valid configurations.
//!
//! Environment knobs (read by the bench binaries, not this library):
//!
//! * `RTCM_QUICK=1` — shrink horizons/seed counts for smoke runs.
//! * `RTCM_SEEDS=n` — override the number of task sets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dispatch;
pub mod events;
pub mod govern;
pub mod reconfig;
pub mod scaling;
pub mod wire;

use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::TaskSet;
use rtcm_core::time::Duration;
use rtcm_sim::{simulate, OverheadModel, SimConfig, SimReport};
use rtcm_workload::{ArrivalConfig, ArrivalTrace};

/// Result of one strategy combination averaged over all seeds.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// The combination, e.g. `J_J_T`.
    pub config: ServiceConfig,
    /// Per-seed accepted utilization ratios.
    pub ratios: Vec<f64>,
    /// Per-seed deadline misses (sanity: should be zero or tiny).
    pub misses: Vec<u64>,
    /// Per-seed re-allocation counts.
    pub reallocations: Vec<u64>,
    /// Per-seed worst consecutive-skip runs (C1 demand).
    pub skip_depths: Vec<u32>,
}

impl ComboResult {
    /// Mean accepted utilization ratio over seeds.
    #[must_use]
    pub fn mean_ratio(&self) -> f64 {
        mean(&self.ratios)
    }

    /// Total deadline misses over seeds.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Mean re-allocations per run.
    #[must_use]
    pub fn mean_reallocations(&self) -> f64 {
        if self.reallocations.is_empty() {
            0.0
        } else {
            self.reallocations.iter().sum::<u64>() as f64 / self.reallocations.len() as f64
        }
    }

    /// Worst consecutive-skip run over all seeds.
    #[must_use]
    pub fn max_skip_depth(&self) -> u32 {
        self.skip_depths.iter().copied().max().unwrap_or(0)
    }
}

/// Arithmetic mean; 0 for empty input.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// A generated experiment instance: one task set plus its arrival trace.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The task set.
    pub tasks: TaskSet,
    /// Its replayable arrival trace.
    pub trace: ArrivalTrace,
}

/// Generates `seeds.len()` instances via `gen`, pairing each task set with
/// a trace derived from the same seed.
pub fn instances(
    seeds: &[u64],
    arrival: &ArrivalConfig,
    gen: impl Fn(u64) -> TaskSet,
) -> Vec<Instance> {
    seeds
        .iter()
        .map(|&seed| {
            let tasks = gen(seed);
            let trace = ArrivalTrace::generate(&tasks, arrival, seed);
            Instance { tasks, trace }
        })
        .collect()
}

/// Runs every valid strategy combination over all instances.
pub fn run_combo_experiment(instances: &[Instance], overheads: OverheadModel) -> Vec<ComboResult> {
    ServiceConfig::all_valid()
        .into_iter()
        .map(|config| {
            let mut ratios = Vec::with_capacity(instances.len());
            let mut misses = Vec::with_capacity(instances.len());
            let mut reallocations = Vec::with_capacity(instances.len());
            let mut skip_depths = Vec::with_capacity(instances.len());
            for (i, inst) in instances.iter().enumerate() {
                let sim_cfg = SimConfig { services: config, overheads, seed: i as u64 };
                let report: SimReport = simulate(&inst.tasks, &inst.trace, &sim_cfg)
                    .expect("valid combos over generated workloads");
                ratios.push(report.ratio.ratio());
                misses.push(report.deadline_misses);
                reallocations.push(report.reallocations);
                skip_depths.push(report.max_consecutive_skips);
            }
            ComboResult { config, ratios, misses, reallocations, skip_depths }
        })
        .collect()
}

/// Renders a figure-5/6 style table plus an ASCII bar per combination.
#[must_use]
pub fn format_ratio_table(title: &str, results: &[ComboResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(
        "combo   mean-ratio  bar (0..1)                                misses  reallocs  maxskip\n",
    );
    for r in results {
        let ratio = r.mean_ratio();
        let bar_len = (ratio * 40.0).round().clamp(0.0, 40.0) as usize;
        out.push_str(&format!(
            "{:6}  {:>10.3}  {:<40}  {:>6}  {:>8.1}  {:>7}\n",
            r.config.label(),
            ratio,
            "#".repeat(bar_len),
            r.total_misses(),
            r.mean_reallocations(),
            r.max_skip_depth(),
        ));
    }
    out
}

/// Serializes results as JSON lines for downstream analysis.
#[must_use]
pub fn to_json(results: &[ComboResult]) -> String {
    let rows: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "combo": r.config.label(),
                "mean_ratio": r.mean_ratio(),
                "ratios": r.ratios,
                "misses": r.misses,
            })
        })
        .collect();
    serde_json::to_string_pretty(&rows).expect("json of plain data")
}

/// Shared CLI/env parameters for the bench binaries.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Number of task-set seeds (paper: 10).
    pub seeds: usize,
    /// Virtual horizon per run (paper: 5 minutes).
    pub horizon: Duration,
}

impl BenchParams {
    /// Reads `RTCM_QUICK` / `RTCM_SEEDS` / `RTCM_HORIZON_SECS` from the
    /// environment; defaults to the paper's 10 seeds × 300 s.
    #[must_use]
    pub fn from_env() -> Self {
        let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
        let seeds = std::env::var("RTCM_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 3 } else { 10 });
        let horizon_secs = std::env::var("RTCM_HORIZON_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 30 } else { 300 });
        BenchParams { seeds, horizon: Duration::from_secs(horizon_secs) }
    }

    /// The seed list `0..seeds`.
    #[must_use]
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds as u64).collect()
    }

    /// Arrival configuration at this horizon (defaults elsewhere).
    #[must_use]
    pub fn arrival_config(&self) -> ArrivalConfig {
        ArrivalConfig { horizon: self.horizon, ..ArrivalConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_workload::RandomWorkload;

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[0.2, 0.4]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn combo_experiment_covers_all_fifteen() {
        let params = BenchParams { seeds: 1, horizon: Duration::from_secs(5) };
        let inst = instances(&params.seed_list(), &params.arrival_config(), |s| {
            RandomWorkload::default().generate(s).unwrap()
        });
        let results = run_combo_experiment(&inst, OverheadModel::zero());
        assert_eq!(results.len(), 15);
        for r in &results {
            assert_eq!(r.ratios.len(), 1);
            let ratio = r.mean_ratio();
            assert!((0.0..=1.0 + 1e-9).contains(&ratio), "{}: {ratio}", r.config.label());
        }
        let table = format_ratio_table("smoke", &results);
        assert!(table.contains("J_J_J"));
        let json = to_json(&results);
        assert!(json.contains("mean_ratio"));
    }
}
