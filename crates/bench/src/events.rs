//! Shared fixture for the `micro_events` bench and its smoke tests: canned
//! federation topologies that isolate the three cost axes of the event
//! fast path — local fan-out width (subscribers per topic), registered but
//! non-subscribed gateway nodes (must be free for pure-local publishes),
//! and remote fan-out width (subscribed gateway nodes, paid per parcel).

use rtcm_events::{ChannelHandle, EventReceiver, Federation, Latency, NodeId, Topic};

/// The topic every fixture publishes on.
pub const FANOUT_TOPIC: Topic = Topic(100);

/// Base of the per-gateway "quiet" topics (subscribed by gateway nodes,
/// never published on) — they register the gateway in the routing state
/// without subscribing it to [`FANOUT_TOPIC`].
pub const QUIET_TOPIC_BASE: u32 = 200;

/// Payload published by the fixture drivers: the size of a small protocol
/// message (`ArriveMsg`-ish JSON).
pub const PAYLOAD: &[u8] = b"{\"job\":{\"task\":7,\"seq\":4242},\"arrival_ns\":1234567890}";

/// A canned publish topology: one publisher handle plus every subscriber
/// the topology created (drain them with [`EventsFixture::drain`]).
pub struct EventsFixture {
    /// The federation keeping all channels alive.
    pub federation: Federation,
    /// The handle the bench publishes from.
    pub publisher: ChannelHandle,
    /// All subscriptions created by the topology, in creation order.
    pub receivers: Vec<EventReceiver>,
}

impl EventsFixture {
    /// Drains every receiver to empty and returns the number of events
    /// consumed (keeps queue memory flat between measured bursts).
    pub fn drain(&self) -> usize {
        let mut consumed = 0;
        for rx in &self.receivers {
            while rx.try_recv().is_ok() {
                consumed += 1;
            }
        }
        consumed
    }
}

/// Local fan-out: a single-node federation with `subscribers` consumers on
/// [`FANOUT_TOPIC`]. Publishes are pure-local (no gateway work at all).
#[must_use]
pub fn fanout_fixture(subscribers: usize) -> EventsFixture {
    let federation = Federation::new(1, Latency::None, 0);
    let publisher = federation.handle(NodeId(0)).expect("node 0 exists");
    let receivers = (0..subscribers).map(|_| publisher.subscribe(FANOUT_TOPIC)).collect();
    EventsFixture { federation, publisher, receivers }
}

/// Gateway flatness: node 0 publishes [`FANOUT_TOPIC`] to one local
/// subscriber while `gateways` other nodes each subscribe to their own
/// quiet topic — they are registered in the routing state but not
/// subscribed to the published topic, so the publish must not pay for
/// them.
#[must_use]
pub fn gateway_fixture(gateways: u16) -> EventsFixture {
    let federation = Federation::new(gateways + 1, Latency::None, 0);
    let publisher = federation.handle(NodeId(0)).expect("node 0 exists");
    let mut receivers = vec![publisher.subscribe(FANOUT_TOPIC)];
    for g in 0..gateways {
        let handle = federation.handle(NodeId(g + 1)).expect("gateway nodes exist");
        receivers.push(handle.subscribe(Topic(QUIET_TOPIC_BASE + u32::from(g))));
    }
    EventsFixture { federation, publisher, receivers }
}

/// Remote fan-out: `remotes` other nodes subscribe to [`FANOUT_TOPIC`], so
/// every publish from node 0 emits one latency-sampled parcel per remote
/// node (delivered by the in-process network thread).
#[must_use]
pub fn remote_fixture(remotes: u16) -> EventsFixture {
    let federation = Federation::new(remotes + 1, Latency::None, 0);
    let publisher = federation.handle(NodeId(0)).expect("node 0 exists");
    let receivers = (0..remotes)
        .map(|r| {
            federation.handle(NodeId(r + 1)).expect("remote nodes exist").subscribe(FANOUT_TOPIC)
        })
        .collect();
    EventsFixture { federation, publisher, receivers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_fixture_delivers_to_every_subscriber() {
        let fx = fanout_fixture(8);
        assert_eq!(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD), 8);
        assert_eq!(fx.drain(), 8);
    }

    #[test]
    fn gateway_fixture_keeps_quiet_topics_quiet() {
        let fx = gateway_fixture(4);
        assert_eq!(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD), 1, "only the local subscriber");
        assert_eq!(fx.drain(), 1);
    }
}
