//! Shared fixture for the `micro_dispatch` bench and its smoke tests:
//! timer-dispatch latency of the reactor's hierarchical wheel against the
//! fixed-interval polling loops it replaced, plus the idle-wakeup rate of
//! both designs.
//!
//! Two costs are isolated:
//!
//! * **Dispatch lateness** — how far past its deadline each timer actually
//!   fires. The wheel sleeps until `next_deadline_ns` exactly, so lateness
//!   is OS sleep overshoot; a polling loop adds up to one whole poll
//!   period on top.
//! * **Idle wakeups** — what an idle thread costs. The old node/manager
//!   loops woke every [`POLL_INTERVAL`] to check a control channel
//!   (~2000 wakeups/s/thread); a reactor with an empty wheel blocks on its
//!   mailbox indefinitely, so the measured count over any window is zero.

use std::time::{Duration, Instant};

use rtcm_events::{Federation, Latency, NodeId, Topic};
use rtcm_rt::{Clock, Reactor, TimerWheel, Wake, DEFAULT_TICK};

/// The control-poll period of the pre-reactor node/manager loops — the
/// baseline the wheel is measured against.
pub const POLL_INTERVAL: Duration = Duration::from_micros(500);

/// Lead time between scheduling a batch of timers and the first deadline,
/// so setup cost never counts as lateness.
pub const LEAD: Duration = Duration::from_millis(5);

/// Dispatch-lateness distribution over one run (all values microseconds).
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Timers fired (must equal the number scheduled).
    pub fired: usize,
    /// Median lateness past the deadline.
    pub p50_us: f64,
    /// 99th-percentile lateness past the deadline.
    pub p99_us: f64,
    /// Worst lateness past the deadline.
    pub max_us: f64,
}

fn stats_from(mut lateness_ns: Vec<f64>) -> LatencyStats {
    let fired = lateness_ns.len();
    lateness_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| {
        if lateness_ns.is_empty() {
            0.0
        } else {
            lateness_ns[((lateness_ns.len() - 1) as f64 * p) as usize] / 1e3
        }
    };
    LatencyStats { fired, p50_us: pct(0.50), p99_us: pct(0.99), max_us: pct(1.0) }
}

/// Deadline offsets (ns after an arbitrary base) for `nodes` emulated
/// threads arming `fires_per_node` timers each, spread pseudo-randomly
/// over `horizon` — the density a 1k/10k-node system's slice boundaries
/// and fence deadlines produce.
#[must_use]
pub fn deadline_schedule(
    nodes: usize,
    fires_per_node: usize,
    horizon: Duration,
    seed: u64,
) -> Vec<u64> {
    let span = horizon.as_nanos() as u64;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut offsets = Vec::with_capacity(nodes * fires_per_node);
    for _ in 0..nodes * fires_per_node {
        // SplitMix64: deterministic, dependency-free spread.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        offsets.push((z ^ (z >> 31)) % span.max(1));
    }
    offsets
}

/// Fires every offset through a hierarchical [`TimerWheel`], sleeping
/// until `next_deadline_ns` between batches — the reactor's dispatch
/// discipline. Lateness per timer is `fire time − deadline`.
#[must_use]
pub fn wheel_dispatch(offsets: &[u64]) -> LatencyStats {
    let clock = Clock::new();
    let base = clock.now().as_nanos() + LEAD.as_nanos() as u64;
    let mut wheel: TimerWheel<u64> = TimerWheel::new(DEFAULT_TICK);
    for &off in offsets {
        let deadline = base + off;
        wheel.schedule_at(deadline, deadline);
    }
    let mut lateness = Vec::with_capacity(offsets.len());
    let mut fired: Vec<(rtcm_rt::TimerId, u64)> = Vec::new();
    while let Some(next) = wheel.next_deadline_ns() {
        let now = clock.now().as_nanos();
        if next > now {
            std::thread::sleep(Duration::from_nanos(next - now));
        }
        fired.clear();
        let now = clock.now().as_nanos();
        wheel.advance(now, &mut fired);
        // A cascade-boundary wake fires nothing; lateness only accrues to
        // real expiries.
        for &(_, deadline) in &fired {
            lateness.push(now.saturating_sub(deadline) as f64);
        }
    }
    stats_from(lateness)
}

/// Fires the same offsets the way the replaced loops did: wake every
/// `poll`, scan for due deadlines, sleep again. Lateness per timer picks
/// up up to one whole poll period of quantization.
#[must_use]
pub fn poll_dispatch(offsets: &[u64], poll: Duration) -> LatencyStats {
    let clock = Clock::new();
    let base = clock.now().as_nanos() + LEAD.as_nanos() as u64;
    let mut deadlines: Vec<u64> = offsets.iter().map(|&off| base + off).collect();
    deadlines.sort_unstable();
    let mut lateness = Vec::with_capacity(deadlines.len());
    let mut idx = 0;
    while idx < deadlines.len() {
        std::thread::sleep(poll);
        let now = clock.now().as_nanos();
        while idx < deadlines.len() && deadlines[idx] <= now {
            lateness.push(now.saturating_sub(deadlines[idx]) as f64);
            idx += 1;
        }
    }
    stats_from(lateness)
}

/// Wakeups/s an idle pre-reactor thread burned: block on an empty mailbox
/// with a `poll`-long timeout, count the timeouts over `window`.
#[must_use]
pub fn polling_idle_rate(window: Duration, poll: Duration) -> f64 {
    let federation = Federation::new(1, Latency::None, 0);
    let handle = federation.handle(NodeId(0)).expect("node 0 exists");
    let mailbox = handle.subscribe(Topic(900));
    let start = Instant::now();
    let mut wakeups = 0u64;
    while start.elapsed() < window {
        if mailbox.recv_timeout(poll).is_err() {
            wakeups += 1;
        }
    }
    wakeups as f64 / start.elapsed().as_secs_f64()
}

/// Timer wakeups an idle reactor thread performs over `window`: with an
/// empty wheel [`Reactor::wait`] blocks on the mailbox indefinitely, so
/// the count is zero — the thread never runs until the window-closing
/// event arrives.
#[must_use]
pub fn reactor_idle_wakeups(window: Duration) -> u64 {
    let federation = Federation::new(1, Latency::None, 0);
    let handle = federation.handle(NodeId(0)).expect("node 0 exists");
    let mailbox = handle.subscribe(Topic(901));
    let waiter = std::thread::spawn(move || {
        let reactor: Reactor<Clock, ()> = Reactor::new(Clock::new(), DEFAULT_TICK);
        let mut wakeups = 0u64;
        loop {
            match reactor.wait(&mailbox) {
                Wake::Timer => wakeups += 1,
                Wake::Event(_) | Wake::Closed => return wakeups,
            }
        }
    });
    std::thread::sleep(window);
    handle.publish(Topic(901), Vec::new());
    waiter.join().expect("idle waiter exits on the closing event")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_in_horizon() {
        let a = deadline_schedule(16, 2, Duration::from_millis(50), 7);
        let b = deadline_schedule(16, 2, Duration::from_millis(50), 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|&off| off < 50_000_000));
    }

    #[test]
    fn wheel_dispatch_fires_every_timer() {
        let offsets = deadline_schedule(4, 2, Duration::from_millis(20), 1);
        let stats = wheel_dispatch(&offsets);
        assert_eq!(stats.fired, offsets.len());
        assert!(stats.p50_us <= stats.p99_us && stats.p99_us <= stats.max_us);
    }
}
