//! Fast smoke test for the bench harness: drives [`run_combo_experiment`]
//! through the same `RTCM_QUICK=1` environment path the bench binaries
//! use, so `cargo test` exercises the §7 experiment plumbing without a
//! full `cargo bench` run.
//!
//! Everything lives in one `#[test]`: the knobs are process-global
//! environment variables, and a single test keeps their mutation
//! sequential under the parallel test runner.

use rtcm_bench::{format_ratio_table, instances, run_combo_experiment, to_json, BenchParams};
use rtcm_core::time::Duration;
use rtcm_sim::OverheadModel;
use rtcm_workload::RandomWorkload;

#[test]
fn quick_env_drives_combo_experiment_end_to_end() {
    // With only RTCM_QUICK set, seeds and horizon fall to smoke defaults.
    std::env::set_var("RTCM_QUICK", "1");
    std::env::remove_var("RTCM_SEEDS");
    std::env::remove_var("RTCM_HORIZON_SECS");
    let params = BenchParams::from_env();
    assert_eq!(params.seeds, 3, "RTCM_QUICK shrinks the seed count");
    assert_eq!(params.horizon, Duration::from_secs(30), "RTCM_QUICK shrinks the horizon");

    // The explicit knobs override the quick defaults; pin them lower still
    // so the smoke experiment stays under a second.
    std::env::set_var("RTCM_SEEDS", "2");
    std::env::set_var("RTCM_HORIZON_SECS", "10");
    let params = BenchParams::from_env();
    assert_eq!(params.seeds, 2, "RTCM_SEEDS must override the quick default");
    assert_eq!(params.seed_list(), vec![0, 1]);

    let insts = instances(&params.seed_list(), &params.arrival_config(), |seed| {
        RandomWorkload::default().generate(seed).expect("paper parameters are satisfiable")
    });
    assert_eq!(insts.len(), 2);
    for inst in &insts {
        assert!(!inst.trace.is_empty(), "every instance carries arrivals");
    }

    // Paper-calibrated overheads: the exact path fig5/fig6 take.
    let results = run_combo_experiment(&insts, OverheadModel::paper_calibrated());
    assert_eq!(results.len(), 15, "all valid strategy combinations run");
    for r in &results {
        assert_eq!(r.ratios.len(), 2, "one ratio per seed for {}", r.config.label());
        let ratio = r.mean_ratio();
        assert!((0.0..=1.0 + 1e-9).contains(&ratio), "{}: ratio {ratio}", r.config.label());
    }

    // Both output formats render every combination.
    let table = format_ratio_table("smoke", &results);
    let json = to_json(&results);
    for r in &results {
        assert!(table.contains(&r.config.label()), "table row for {}", r.config.label());
        assert!(json.contains(&r.config.label()), "json row for {}", r.config.label());
    }
    assert!(json.contains("mean_ratio"));
}
