//! Fast smoke test for the bench harness: drives [`run_combo_experiment`]
//! through the same `RTCM_QUICK=1` environment path the bench binaries
//! use, so `cargo test` exercises the §7 experiment plumbing without a
//! full `cargo bench` run — plus a smoke pass over the `micro_admission`
//! scaling arms' shared fixture (`rtcm_bench::scaling`).
//!
//! The combo experiment lives in one `#[test]`: its knobs are
//! process-global environment variables, and a single test keeps their
//! mutation sequential under the parallel test runner. The scaling smoke
//! test reads no environment variables, so it may run in parallel.

use rtcm_bench::dispatch::{
    deadline_schedule, poll_dispatch, reactor_idle_wakeups, wheel_dispatch,
};
use rtcm_bench::events::{fanout_fixture, gateway_fixture, remote_fixture, FANOUT_TOPIC, PAYLOAD};
use rtcm_bench::govern::{governor_policy, metrics_stream};
use rtcm_bench::reconfig::{loaded_reconfig_controller, reconfig_fixture};
use rtcm_bench::scaling::{
    probe_once, scaling_controller, scaling_probes, TARGET_PROC_UTILIZATION,
};
use rtcm_bench::{format_ratio_table, instances, run_combo_experiment, to_json, BenchParams};
use rtcm_core::admission::AdmissionMode;
use rtcm_core::analysis::audit_controller;
use rtcm_core::time::{Duration, Time};
use rtcm_sim::OverheadModel;
use rtcm_workload::RandomWorkload;

#[test]
fn quick_env_drives_combo_experiment_end_to_end() {
    // With only RTCM_QUICK set, seeds and horizon fall to smoke defaults.
    std::env::set_var("RTCM_QUICK", "1");
    std::env::remove_var("RTCM_SEEDS");
    std::env::remove_var("RTCM_HORIZON_SECS");
    let params = BenchParams::from_env();
    assert_eq!(params.seeds, 3, "RTCM_QUICK shrinks the seed count");
    assert_eq!(params.horizon, Duration::from_secs(30), "RTCM_QUICK shrinks the horizon");

    // The explicit knobs override the quick defaults; pin them lower still
    // so the smoke experiment stays under a second.
    std::env::set_var("RTCM_SEEDS", "2");
    std::env::set_var("RTCM_HORIZON_SECS", "10");
    let params = BenchParams::from_env();
    assert_eq!(params.seeds, 2, "RTCM_SEEDS must override the quick default");
    assert_eq!(params.seed_list(), vec![0, 1]);

    let insts = instances(&params.seed_list(), &params.arrival_config(), |seed| {
        RandomWorkload::default().generate(seed).expect("paper parameters are satisfiable")
    });
    assert_eq!(insts.len(), 2);
    for inst in &insts {
        assert!(!inst.trace.is_empty(), "every instance carries arrivals");
    }

    // Paper-calibrated overheads: the exact path fig5/fig6 take.
    let results = run_combo_experiment(&insts, OverheadModel::paper_calibrated());
    assert_eq!(results.len(), 15, "all valid strategy combinations run");
    for r in &results {
        assert_eq!(r.ratios.len(), 2, "one ratio per seed for {}", r.config.label());
        let ratio = r.mean_ratio();
        assert!((0.0..=1.0 + 1e-9).contains(&ratio), "{}: ratio {ratio}", r.config.label());
    }

    // Both output formats render every combination.
    let table = format_ratio_table("smoke", &results);
    let json = to_json(&results);
    for r in &results {
        assert!(table.contains(&r.config.label()), "table row for {}", r.config.label());
        assert!(json.contains(&r.config.label()), "json row for {}", r.config.label());
    }
    assert!(json.contains("mean_ratio"));
}

/// Smoke coverage of the `admission_scaling` bench arms at the
/// `RTCM_QUICK` sizes: the incremental and brute-force controllers built
/// from the shared fixture must agree on every steady-state probe
/// decision, keep their cached AUB sums consistent with fresh
/// recomputation, and stay inside the fixture's load envelope.
#[test]
fn scaling_fixture_arms_agree_at_quick_sizes() {
    for (n, procs) in [(128u32, 8u16), (1024, 64)] {
        let mut inc = scaling_controller(n, procs, AdmissionMode::Incremental);
        let mut brute = scaling_controller(n, procs, AdmissionMode::BruteForce);
        let probes = scaling_probes(procs);
        let mut now = Time::ZERO;
        for seq in 0..64u64 {
            now = now.saturating_add(Duration::from_millis(2));
            let probe = &probes[(seq % 2) as usize];
            let a = probe_once(&mut inc, probe, seq, now);
            let b = probe_once(&mut brute, probe, seq, now);
            assert_eq!(a, b, "n={n}: probe {seq} diverged across admission modes");
            assert!(a.is_accept(), "n={n}: steady-state probe {seq} rejected");
        }
        for (label, ac) in [("incremental", &inc), ("brute", &brute)] {
            let audit = audit_controller(ac);
            assert!(
                audit.is_consistent(1e-9),
                "n={n} {label}: cached sums drifted {}",
                audit.max_cached_drift
            );
            assert_eq!(audit.violating_entries, 0, "n={n} {label}");
            assert!(
                audit.processor_utilization.iter().all(|&u| u < 2.0 * TARGET_PROC_UTILIZATION),
                "n={n} {label}: load out of envelope"
            );
        }
        assert_eq!(inc.current_entries(), brute.current_entries());
    }
}

/// Smoke coverage of the `micro_govern` bench arms at the `RTCM_QUICK`
/// widths: policy evaluation over the shared alternating-load stream must
/// be deterministic, and the cooldown must hold the anti-flapping rate
/// bound (swaps at least `cooldown + 1` windows apart) at every policy
/// width.
#[test]
fn govern_fixture_evaluation_is_deterministic_and_rate_bounded() {
    use rtcm_core::govern::Governor;
    let stream = metrics_stream(64, 4);
    for rules in [2usize, 16] {
        let policy = governor_policy(rules);
        let cooldown = policy.cooldown_windows as u64;
        let run = |mut g: Governor| {
            let mut current = "J_N_N".parse().unwrap();
            let mut fired = Vec::new();
            for (i, m) in stream.iter().enumerate() {
                if let Some(d) = g.observe(current, m) {
                    current = d.target;
                    fired.push((i, d.rule_name.clone(), d.target));
                }
            }
            fired
        };
        let a = run(Governor::new(policy.clone()).unwrap());
        let b = run(Governor::new(policy).unwrap());
        assert_eq!(a, b, "rules={rules}: evaluation must be deterministic");
        assert!(!a.is_empty(), "rules={rules}: the alternating stream must trip a rule");
        for pair in a.windows(2) {
            assert!(
                pair[1].0 - pair[0].0 >= (cooldown + 1) as usize,
                "rules={rules}: swaps at windows {} and {} violate the cooldown",
                pair[0].0,
                pair[1].0
            );
        }
    }
}

/// Smoke coverage of the `micro_events` bench arms at the `RTCM_QUICK`
/// sizes: every fixture topology round-trips a burst — each publish fans
/// out to every subscriber exactly once, quiet gateways stay quiet, remote
/// subscribers receive across the in-process network — and the federation
/// counters reconcile with the observed deliveries.
#[test]
fn events_fixture_round_trips_at_quick_sizes() {
    const BURST: usize = 64;

    // Local fan-out: n subscribers ⇒ n deliveries per publish.
    for subs in [1usize, 8] {
        let fx = fanout_fixture(subs);
        for _ in 0..BURST {
            assert_eq!(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD), subs);
        }
        assert_eq!(fx.drain(), BURST * subs, "subs={subs}");
        let stats = fx.federation.stats();
        assert_eq!(stats.events_published, BURST as u64);
        assert_eq!(stats.local_deliveries, (BURST * subs) as u64);
        assert_eq!(stats.events_dropped, 0);
        assert_eq!(stats.remote_parcels, 0, "pure-local topology");
    }

    // Quiet gateways: registered nodes on unrelated topics cost nothing.
    let fx = gateway_fixture(8);
    for _ in 0..BURST {
        assert_eq!(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD), 1);
    }
    assert_eq!(fx.drain(), BURST, "only the local subscriber is reached");
    assert_eq!(fx.federation.stats().remote_parcels, 0);

    // Remote fan-out: every publish emits one parcel per remote node, and
    // each arrives (Latency::None) once the network thread runs.
    let fx = remote_fixture(4);
    for _ in 0..BURST {
        assert_eq!(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD), 4);
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut drained = 0;
    while drained < BURST * 4 && std::time::Instant::now() < deadline {
        drained += fx.drain();
    }
    assert_eq!(drained, BURST * 4, "every parcel delivered");
    assert_eq!(fx.federation.stats().remote_parcels, (BURST * 4) as u64);
}

/// Smoke coverage of the `micro_reconfig` bench arms at the `RTCM_QUICK`
/// sizes: a full drain/reseed round trip over the shared fixture must be
/// utilization-neutral, preserve the current set, and leave the cached
/// AUB bookkeeping exactly fresh.
#[test]
fn reconfig_fixture_round_trip_is_lossless_at_quick_sizes() {
    for (n, procs) in [(64u32, 8u16), (256, 16)] {
        let (task_set, tasks) = reconfig_fixture(n, procs);
        let mut ac = loaded_reconfig_controller("T_N_T", &tasks, procs);
        let before = ac.ledger().utilizations();
        assert_eq!(ac.reserved_tasks() as u32, n);

        let now = Time::ZERO + Duration::from_millis(1);
        let drain = ac.reconfigure("J_N_T".parse().unwrap(), now, &task_set).unwrap();
        assert_eq!(drain.reservations_drained as u32, n, "n={n}");
        assert_eq!(ac.reserved_tasks(), 0);

        let reseed = ac.reconfigure("T_N_T".parse().unwrap(), now, &task_set).unwrap();
        assert_eq!(reseed.reservations_reseeded as u32, n, "n={n}");
        assert_eq!(reseed.reseeds_skipped, 0, "n={n}");
        assert_eq!(ac.reserved_tasks() as u32, n);
        assert_eq!(ac.current_entries() as u32, n, "round trip preserves the current set");

        let after = ac.ledger().utilizations();
        for (p, (b, a)) in before.iter().zip(&after).enumerate() {
            assert!((b - a).abs() < 1e-9, "n={n} P{p}: {b} vs {a} after round trip");
        }
        let audit = audit_controller(&ac);
        assert!(
            audit.is_consistent(1e-9),
            "n={n}: cached sums drifted {} across the round trip",
            audit.max_cached_drift
        );
    }
}

/// Smoke coverage of the `micro_dispatch` bench arms at tiny sizes: both
/// dispatch styles fire every scheduled timer, the wheel's lateness stays
/// sane (sleep overshoot, not seconds), and an idle reactor performs zero
/// timer wakeups over a measured window — the counter the full-size bench
/// reports in `BENCH_dispatch.json`.
#[test]
fn dispatch_fixture_fires_everything_and_idles_for_free() {
    let offsets = deadline_schedule(8, 2, std::time::Duration::from_millis(40), 3);

    let wheel = wheel_dispatch(&offsets);
    assert_eq!(wheel.fired, offsets.len(), "wheel dispatch must fire every timer");
    assert!(wheel.p50_us <= wheel.p99_us && wheel.p99_us <= wheel.max_us);
    assert!(wheel.max_us < 40_000.0, "wheel lateness blew past the whole horizon");

    let poll = poll_dispatch(&offsets, std::time::Duration::from_millis(2));
    assert_eq!(poll.fired, offsets.len(), "poll dispatch must fire every timer");

    let wakeups = reactor_idle_wakeups(std::time::Duration::from_millis(100));
    assert_eq!(wakeups, 0, "an idle reactor must not wake on timers");
}
