//! **Ablation A7 — centralized vs. distributed admission control (§3).**
//!
//! The paper adopts a centralized task manager "with less complexity and
//! overhead" and notes a distributed architecture would need AC components
//! to "coordinate and synchronize with each other in order to make correct
//! decisions". This bench runs both architectures on the same workloads
//! (`J_N_N`, the combination both support):
//!
//! * **centralized** — every admission pays the manager round-trip
//!   (~2 communication delays), but decisions are made on exact state;
//! * **distributed** — each processor's controller decides immediately on
//!   a view synchronized with one network delay; concurrent admissions can
//!   race past the AUB bound, so admitted jobs *can* miss deadlines.
//!
//! The trade: distributed saves ~1 ms of release latency per job, at the
//! cost of admissions decided on views up to one network delay stale. At
//! paper-scale arrival rates the race window is rarely hit, and when it
//! is, AUB's pessimism usually absorbs the over-admission — the races
//! show up as slightly *higher* acceptance rather than misses. The
//! experiment thus sharpens §3's argument: centralized is chosen for
//! simplicity and exactness, not because distribution fails outright.

use rtcm_core::time::Duration;
use rtcm_sim::{simulate, simulate_distributed, OverheadModel, SimConfig};
use rtcm_workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};

fn main() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let seeds: u64 = if quick { 3 } else { 10 };
    let horizon = Duration::from_secs(if quick { 30 } else { 300 });

    println!(
        "== Ablation A7: centralized vs distributed admission (J_N_N, {seeds} seeds, {horizon} horizon) =="
    );
    println!(
        "{:<14} {:>8} {:>8} {:>14} {:>12}",
        "architecture", "ratio", "misses", "mean-response", "max-response"
    );

    let mut rows = vec![("centralized", 0.0, 0u64, 0u128, Duration::ZERO); 2];
    rows[1].0 = "distributed";

    for seed in 0..seeds {
        let tasks = RandomWorkload::default().generate(seed).expect("satisfiable");
        let trace = ArrivalTrace::generate(
            &tasks,
            &ArrivalConfig { horizon, ..ArrivalConfig::default() },
            seed,
        );
        let cfg = SimConfig {
            services: "J_N_N".parse().expect("valid"),
            overheads: OverheadModel::paper_calibrated(),
            seed,
        };
        let central = simulate(&tasks, &trace, &cfg).expect("valid combo");
        let distributed = simulate_distributed(&tasks, &trace, &cfg).expect("supported combo");
        for (row, report) in rows.iter_mut().zip([central, distributed]) {
            row.1 += report.ratio.ratio();
            row.2 += report.deadline_misses;
            row.3 += u128::from(report.response.mean().as_nanos());
            row.4 = row.4.max(report.response.max());
        }
    }

    for (name, ratio_sum, misses, mean_ns_sum, max_resp) in rows {
        let mean_response =
            Duration::from_nanos(u64::try_from(mean_ns_sum / u128::from(seeds)).unwrap_or(0));
        println!(
            "{:<14} {:>8.3} {:>8} {:>12}us {:>10}us",
            name,
            ratio_sum / seeds as f64,
            misses,
            mean_response.as_micros(),
            max_resp.as_micros()
        );
    }
    println!(
        "\ndistributed decisions avoid the ~1 ms manager round-trip; at paper-scale\n\
         arrival rates the stale-view race window (~1 comm delay) is rarely hit.\n"
    );

    // Stress section: short deadlines and dense aperiodic arrivals push
    // concurrent admissions into the synchronization window, surfacing the
    // over-admission race the paper's centralized design rules out.
    println!("-- stress: deadlines 50-500 ms, interarrival 0.3 x deadline, U = 0.6 --");
    println!("{:<14} {:>8} {:>10} {:>10}", "architecture", "ratio", "admitted", "misses");
    let stress = RandomWorkload {
        deadline: (Duration::from_millis(50), Duration::from_millis(500)),
        target_utilization: 0.6,
        ..RandomWorkload::default()
    };
    let mut totals = [(0.0f64, 0u64, 0u64), (0.0, 0, 0)];
    for seed in 0..seeds {
        let tasks = stress.generate(seed).expect("satisfiable");
        let trace = ArrivalTrace::generate(
            &tasks,
            &ArrivalConfig { horizon, poisson_factor: 0.3, ..ArrivalConfig::default() },
            seed,
        );
        let cfg = SimConfig {
            services: "J_N_N".parse().expect("valid"),
            overheads: OverheadModel::paper_calibrated(),
            seed,
        };
        let central = simulate(&tasks, &trace, &cfg).expect("valid combo");
        let distributed = simulate_distributed(&tasks, &trace, &cfg).expect("supported combo");
        for (t, r) in totals.iter_mut().zip([central, distributed]) {
            t.0 += r.ratio.ratio();
            t.1 += r.ratio.released_jobs();
            t.2 += r.deadline_misses;
        }
    }
    for (name, (ratio, admitted, misses)) in ["centralized", "distributed"].iter().zip(totals) {
        println!("{name:<14} {:>8.3} {admitted:>10} {misses:>10}", ratio / seeds as f64);
    }
}
