//! **Ablation A6 — transient aperiodic overload (the paper's motivating
//! scenario).**
//!
//! §1/§7.2 motivate the middleware with bursts: "a blockage in a fluid
//! flow valve may cause a sharp increase in the load … as aperiodic alert
//! and diagnostic tasks are launched". This bench injects an 8× aperiodic
//! burst into a §7.1-style workload and measures, per strategy
//! combination, the accepted utilization ratio *inside* the burst window
//! vs. outside it, plus deadline misses of admitted jobs.
//!
//! Expected shape: during the burst every combination sheds load
//! (admission control doing its job — zero deadline misses), and the
//! IR-per-job combinations sustain the highest in-burst acceptance because
//! completed work is released from the books fastest.

use rtcm_core::strategy::ServiceConfig;
use rtcm_core::time::Duration;
use rtcm_sim::{simulate_recorded, OverheadModel, SimConfig};
use rtcm_workload::BurstScenario;

fn main() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let seeds: u64 = if quick { 2 } else { 5 };
    let scenario = BurstScenario {
        horizon: Duration::from_secs(if quick { 60 } else { 180 }),
        burst_start: Duration::from_secs(if quick { 20 } else { 60 }),
        burst_duration: Duration::from_secs(if quick { 20 } else { 60 }),
        intensity: 8.0,
        ..BurstScenario::default()
    };
    let combos: Vec<ServiceConfig> =
        ["T_N_N", "J_N_N", "J_T_N", "J_J_N", "J_J_J"].iter().map(|s| s.parse().unwrap()).collect();

    println!(
        "== Ablation A6: 8x aperiodic burst in [{}, {}) of {} ({} seeds) ==",
        scenario.burst_start,
        scenario.burst_end(),
        scenario.horizon,
        seeds
    );
    println!("{:<8} {:>10} {:>10} {:>8}", "combo", "in-burst", "baseline", "misses");

    for combo in &combos {
        let mut in_burst_arr = 0.0;
        let mut in_burst_rel = 0.0;
        let mut out_arr = 0.0;
        let mut out_rel = 0.0;
        let mut misses = 0u64;
        for seed in 0..seeds {
            let (tasks, trace) = scenario.generate(seed).expect("satisfiable scenario");
            let (report, records) = simulate_recorded(
                &tasks,
                &trace,
                &SimConfig { services: *combo, overheads: OverheadModel::paper_calibrated(), seed },
            )
            .expect("valid combos");
            misses += report.deadline_misses;
            for r in &records {
                if scenario.in_burst(r.arrival) {
                    in_burst_arr += r.utilization;
                    if r.released {
                        in_burst_rel += r.utilization;
                    }
                } else {
                    out_arr += r.utilization;
                    if r.released {
                        out_rel += r.utilization;
                    }
                }
            }
        }
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>8}",
            combo.label(),
            in_burst_rel / in_burst_arr.max(f64::MIN_POSITIVE),
            out_rel / out_arr.max(f64::MIN_POSITIVE),
            misses
        );
    }
}
