//! **Micro-benchmark: reactor timer dispatch vs the polling loops it
//! replaced.**
//!
//! The PR-7 reactor rework parks every node/manager thread on one blocking
//! wait (`min(next wheel deadline, mailbox)`) instead of a fixed-interval
//! control poll. This bench pins both halves of the claim:
//!
//! * **Criterion arms** (`wheel_*`): the wheel's mechanical costs —
//!   schedule+cancel pairs on a loaded wheel and a full advance over a
//!   busy horizon — so regressions in the O(1) paths show up without any
//!   sleeping in the loop.
//! * **Dispatch section** (written to `BENCH_dispatch.json` at the
//!   workspace root): end-to-end lateness of real sleep-until-deadline
//!   dispatch at 1k/10k emulated nodes against a 500 µs polling baseline,
//!   plus the idle-wakeup rates of both designs (polling ≈ 2000/s/thread,
//!   reactor = 0).

use std::time::Duration;

use criterion::{black_box, criterion_group, Criterion};
use rtcm_bench::dispatch::{
    deadline_schedule, poll_dispatch, polling_idle_rate, reactor_idle_wakeups, wheel_dispatch,
    LatencyStats, POLL_INTERVAL,
};
use rtcm_rt::{TimerWheel, DEFAULT_TICK};

fn bench_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");

    // Schedule+cancel churn against a standing population: the hot path a
    // node takes per slice and the manager per prepare.
    for standing in [64usize, 4096] {
        let mut wheel: TimerWheel<u64> = TimerWheel::new(DEFAULT_TICK);
        for i in 0..standing {
            wheel.schedule_at((i as u64 + 1) * 1_000_000, 0);
        }
        let horizon = (standing as u64 + 2) * 1_000_000;
        group.bench_function(format!("wheel_schedule_cancel_{standing}_standing"), |b| {
            b.iter(|| {
                let id = wheel.schedule_at(black_box(horizon), 0);
                black_box(wheel.cancel(id));
            });
        });
    }

    // A full advance over a busy 10 ms horizon (100 timers): cascade and
    // slot-drain cost without any sleeping.
    group.bench_function("wheel_advance_busy_10ms", |b| {
        b.iter(|| {
            let mut wheel: TimerWheel<u64> = TimerWheel::new(DEFAULT_TICK);
            for i in 0..100u64 {
                wheel.schedule_at(i * 100_000, i);
            }
            let mut fired = Vec::with_capacity(100);
            wheel.advance(black_box(10_000_000), &mut fired);
            black_box(fired.len())
        });
    });
    group.finish();
}

fn emit_json() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    // Best-of-`rounds` per arm: a multi-ms scheduler stall on a shared
    // runner lands in whichever arm was unlucky and would swamp the
    // 500 µs quantization effect actually under test.
    let (fires_per_node, horizon, idle_window, rounds) = if quick {
        (8usize, Duration::from_millis(200), Duration::from_millis(300), 2usize)
    } else {
        (8, Duration::from_millis(400), Duration::from_secs(1), 3)
    };
    let mut rows = Vec::new();
    let mut run = |arm: String, measure: &dyn Fn() -> LatencyStats| {
        let stats = (0..rounds)
            .map(|_| measure())
            .min_by(|a, b| a.p99_us.total_cmp(&b.p99_us))
            .expect("at least one round");
        println!(
            "dispatch/{arm:<24} fired {:>6}  p50 {:>9.1} us  p99 {:>9.1} us  max {:>9.1} us",
            stats.fired, stats.p50_us, stats.p99_us, stats.max_us
        );
        rows.push(serde_json::json!({
            "arm": arm,
            "fired": stats.fired,
            "p50_lateness_us": stats.p50_us,
            "p99_lateness_us": stats.p99_us,
            "max_lateness_us": stats.max_us,
        }));
    };
    for nodes in [1_000usize, 10_000] {
        // Same per-arm sample count (scheduler-stall tails need it), same
        // horizon: the node count scales timer *density* on the wheel.
        let fires = (fires_per_node * 1_000) / nodes;
        let offsets = deadline_schedule(nodes, fires.max(1), horizon, 42);
        run(format!("wheel_{nodes}_nodes"), &|| wheel_dispatch(&offsets));
        run(format!("poll_{nodes}_nodes"), &|| poll_dispatch(&offsets, POLL_INTERVAL));
    }

    let poll_rate = polling_idle_rate(idle_window, POLL_INTERVAL);
    let reactor_wakeups = reactor_idle_wakeups(idle_window);
    println!(
        "dispatch/idle_wakeups        polling {poll_rate:>8.0} wakeups/s/thread  \
         reactor {reactor_wakeups} wakeups over {idle_window:?}"
    );

    let doc = serde_json::json!({
        "bench": "micro_dispatch",
        "quick": quick,
        "timers_per_arm": fires_per_node * 1_000,
        "rounds": rounds,
        "horizon_ms": horizon.as_millis() as u64,
        "poll_interval_us": POLL_INTERVAL.as_micros() as u64,
        "results": rows,
        "idle": {
            "window_ms": idle_window.as_millis() as u64,
            "polling_wakeups_per_sec_per_thread": poll_rate,
            "reactor_wakeups": reactor_wakeups,
        },
    });
    // CARGO_MANIFEST_DIR = crates/bench → the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_dispatch.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("plain data")) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_wheel);

fn main() {
    benches();
    emit_json();
}
