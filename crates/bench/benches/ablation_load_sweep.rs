//! **Ablation A1 — where does idle resetting matter?**
//!
//! Sweeps the offered per-processor synthetic utilization from 0.1 to 1.0
//! (the paper fixes it at 0.5) and reports the accepted utilization ratio
//! for four representative combinations. Expected shape: at low load every
//! strategy accepts nearly everything; as load grows, the pessimism
//! orderings of Figure 5 (no IR < IR per task < IR per job; AC per job
//! above AC per task) open up, then all strategies saturate.

use rtcm_core::strategy::ServiceConfig;
use rtcm_core::time::Duration;
use rtcm_sim::{simulate, OverheadModel, SimConfig};
use rtcm_workload::{ArrivalTrace, RandomWorkload};

fn main() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let seeds: u64 = if quick { 2 } else { 5 };
    let horizon = Duration::from_secs(if quick { 30 } else { 120 });
    let combos: Vec<ServiceConfig> =
        ["T_N_N", "J_N_N", "J_T_N", "J_J_N", "J_J_J"].iter().map(|s| s.parse().unwrap()).collect();

    println!(
        "== Ablation A1: accepted ratio vs offered load ({} seeds, {} horizon) ==",
        seeds, horizon
    );
    print!("{:>6}", "U");
    for c in &combos {
        print!("  {:>6}", c.label());
    }
    println!();

    for load_pct in (10..=100).step_by(10) {
        let target = f64::from(load_pct) / 100.0;
        print!("{target:>6.2}");
        for combo in &combos {
            let mut ratios = Vec::new();
            for seed in 0..seeds {
                let workload =
                    RandomWorkload { target_utilization: target, ..RandomWorkload::default() };
                let tasks = workload.generate(seed).expect("satisfiable");
                let trace = ArrivalTrace::generate(
                    &tasks,
                    &rtcm_workload::ArrivalConfig {
                        horizon,
                        ..rtcm_workload::ArrivalConfig::default()
                    },
                    seed,
                );
                let report = simulate(
                    &tasks,
                    &trace,
                    &SimConfig {
                        services: *combo,
                        overheads: OverheadModel::paper_calibrated(),
                        seed,
                    },
                )
                .expect("valid combos");
                ratios.push(report.ratio.ratio());
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            print!("  {mean:>6.3}");
        }
        println!();
    }
}
