//! **Ablation A2 — centralized admission control as a bottleneck.**
//!
//! §3 argues a centralized AC/LB is acceptable because "the computation
//! time of the schedulability analysis is significantly lower than task
//! execution times". This bench probes where that breaks: admission
//! decision cost as the deployment grows in processors and in current
//! tasks (the AUB test is `O(current tasks × stages)` per decision).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rtcm_core::admission::AdmissionController;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId, TaskSpec};
use rtcm_core::time::{Duration, Time};

fn chain(id: u32, stages: u16, procs: u16) -> TaskSpec {
    let mut b = TaskBuilder::aperiodic(TaskId(id)).deadline(Duration::from_secs(10));
    for j in 0..stages {
        b = b.subtask(
            Duration::from_micros(500),
            ProcessorId((id as u16 + j) % procs),
            [ProcessorId((id as u16 + j + 1) % procs)],
        );
    }
    b.build().expect("valid")
}

fn controller(procs: u16, current: u32) -> AdmissionController {
    let cfg: ServiceConfig = "J_N_T".parse().unwrap();
    let mut ac = AdmissionController::new(cfg, procs as usize).unwrap();
    for i in 0..current {
        let _ = ac.handle_arrival(&chain(i, 3, procs), 0, Time::ZERO).unwrap();
    }
    ac
}

fn bench_scaling_processors(c: &mut Criterion) {
    // Cloned controller per measured decision: admitted probes must not
    // accumulate, or the labeled current-set size would silently grow.
    let mut group = c.benchmark_group("ac_scaling_processors");
    for procs in [5u16, 20, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            let ac = controller(procs, 64);
            let probe = chain(100_000, 3, procs);
            b.iter_batched(
                || ac.clone(),
                |mut ac| black_box(ac.handle_arrival(&probe, 0, Time::ZERO).unwrap()),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_scaling_current_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ac_scaling_current_tasks");
    for current in [16u32, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(current), &current, |b, &current| {
            let ac = controller(10, current);
            let probe = chain(100_000, 3, 10);
            b.iter_batched(
                || ac.clone(),
                |mut ac| black_box(ac.handle_arrival(&probe, 0, Time::ZERO).unwrap()),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_processors, bench_scaling_current_tasks);
criterion_main!(benches);
