//! **Micro-benchmark: federation-simulator scaling (hosts vs wall time).**
//!
//! The tentpole claim of the federated simulator is that a multi-host
//! failure campaign is *cheap*: hundreds of seeded runs fit in a CI
//! minute because everything — links, clocks, crashes, the two-phase
//! protocol — advances on one in-memory event heap. This bench pins the
//! scaling curve: wall time per randomized campaign (fixed 600 ms virtual
//! horizon, full fault storm, invariant checks on) as the simulated host
//! count doubles from 2 to 16.
//!
//! Each campaign run also *asserts its invariants*, so this bench doubles
//! as a scaling-sized safety sweep: a regression that breaks
//! no-partial-swap at 16 hosts fails the bench, not just a reader's eye.
//!
//! Output: per-arm mean/p50/p99 wall nanoseconds plus processed-event
//! counts, written to `BENCH_simfed.json` at the workspace root
//! (uploaded as a CI artifact for the scaling trajectory).

use std::time::Instant;

use rtcm_sim::Campaign;

const HORIZON_MS: u64 = 600;

/// Runs `runs` campaigns at `hosts` and returns
/// `(mean ns, p50 ns, p99 ns, total events)`.
fn measure(hosts: u16, runs: u64, seed_base: u64) -> (f64, f64, f64, u64) {
    let mut samples: Vec<f64> = Vec::with_capacity(runs as usize);
    let mut events = 0u64;
    for run in 0..runs {
        let campaign = Campaign::randomized(seed_base + run, hosts, HORIZON_MS);
        let start = Instant::now();
        let outcome = campaign.run().expect("campaign runs");
        samples.push(start.elapsed().as_secs_f64() * 1e9);
        outcome.assert_clean();
        events += outcome.report.events;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (mean, pct(0.50), pct(0.99), events)
}

fn main() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let runs = if quick { 20 } else { 100 };
    let mut rows = Vec::new();
    let mut scaling = Vec::new();
    for hosts in [2u16, 4, 8, 16] {
        let (mean_ns, p50_ns, p99_ns, events) = measure(hosts, runs, 7_000 + u64::from(hosts));
        println!(
            "simfed/hosts_{hosts:<2} mean {:>10.0} ns  p50 {:>10.0} ns  p99 {:>10.0} ns  \
             ({events} events over {runs} clean campaigns)",
            mean_ns, p50_ns, p99_ns
        );
        rows.push(serde_json::json!({
            "arm": format!("hosts_{hosts}"),
            "hosts": hosts,
            "mean_ns": mean_ns,
            "p50_ns": p50_ns,
            "p99_ns": p99_ns,
            "events": events,
            "runs": runs,
        }));
        scaling.push(mean_ns);
    }

    // The scaling bar: 8x the hosts may not cost more than 64x the wall
    // time (i.e. stays within ~quadratic of the 2-host baseline — the
    // event count itself grows superlinearly with hosts because every
    // host pair is a link and every host injects its own arrivals).
    let ratio = scaling[3] / scaling[0].max(1.0);
    assert!(ratio < 64.0, "16-host campaigns cost {ratio:.1}x the 2-host baseline (bar: 64x)");

    let doc = serde_json::json!({
        "bench": "micro_simfed",
        "quick": quick,
        "horizon_ms": HORIZON_MS,
        "runs_per_arm": runs,
        "bars": { "hosts_16_vs_2_max_ratio": 64.0 },
        "results": rows,
    });
    // CARGO_MANIFEST_DIR = crates/bench → the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_simfed.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("plain data")) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
