//! **Figure 8 — Service Overheads (µs), §7.3.**
//!
//! Reproduces the paper's overhead table on the threaded runtime: 3
//! application processors plus a task-manager node, random workload
//! (subtasks/task ~ U{1..3}), middleware operations timed at the
//! instrumentation points of Figure 7:
//!
//! | row | path |
//! |---|---|
//! | AC without LB | ops 1+2+4+2+5 (total arrival→release, no LB) |
//! | AC with LB (no re-allocation) | ops 1+2+3+2+5 |
//! | AC with LB (re-allocation) | ops 1+2+3+2+6 |
//! | IR (on AC side) | op 8 |
//! | IR (other part) | ops 7+2 |
//! | Communication delay | op 2, measured as paper does: 1000 ping-pongs / 2 |
//!
//! Unlike the paper's testbed, all nodes share one clock, so one-way
//! delays are additionally measured *directly* (reported as extra rows).
//! And unlike the paper's mean/max-only table, every row is backed by the
//! telemetry plane's log2 histograms, so p50/p90/p99 columns come for
//! free. Absolute values reflect this machine, not 2002-era Pentiums; the
//! table's *structure* (re-allocation ≈ one extra hop, IR's AC-side cost
//! tiny, all delays ≪ 2 ms + network) is the reproduction target.
//!
//! `RTCM_QUICK=1` shrinks run time; `RTCM_RT_SECS=n` overrides per-scenario
//! wall-clock seconds.

use std::time::{Duration as StdDuration, Instant};

use rtcm_config::{configure_with, WorkloadSpec};
use rtcm_core::time::Duration;
use rtcm_events::{Federation, Latency, NodeId, Topic};
use rtcm_rt::{RtOptions, System, SystemReport};
use rtcm_telemetry::{Histogram, HistogramSnapshot};
use rtcm_workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};

fn scenario_seconds() -> u64 {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    std::env::var("RTCM_RT_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(if quick {
        3
    } else {
        15
    })
}

/// One scenario's outputs: the merged report plus the per-operation
/// histogram snapshots captured from the telemetry plane before shutdown
/// (the report's `DelayStats` carry mean/min/max; the percentile columns
/// need the full bucket distributions).
struct Scenario {
    report: SystemReport,
    total_no_realloc: HistogramSnapshot,
    total_realloc: HistogramSnapshot,
    ir_update: HistogramSnapshot,
    ir_path: HistogramSnapshot,
    hold: HistogramSnapshot,
    comm: HistogramSnapshot,
    lb_plan: HistogramSnapshot,
    ac_test: HistogramSnapshot,
    release: HistogramSnapshot,
}

/// Runs one strategy combination on the runtime for `secs` wall-clock
/// seconds, replaying a §7.3-style workload in real time.
fn run_scenario(services: &str, secs: u64, seed: u64) -> Scenario {
    // §7.3 workload: like §7.1 but 3 application processors and 1–3
    // subtasks per task. Deadlines are shortened to 250 ms – 2 s so a
    // short wall-clock run still yields enough admission-path samples
    // (documented deviation: sample density, not semantics).
    let workload = RandomWorkload {
        processors: 3,
        subtasks: (1, 3),
        deadline: (Duration::from_millis(250), Duration::from_secs(2)),
        ..RandomWorkload::default()
    };
    let tasks = workload.generate(seed).expect("satisfiable workload");
    let trace = ArrivalTrace::generate(
        &tasks,
        &ArrivalConfig { horizon: Duration::from_secs(secs), ..ArrivalConfig::default() },
        seed,
    );
    let spec = WorkloadSpec::from_task_set("fig8", 3, &tasks);
    let deployment = configure_with(&spec, services.parse().expect("valid combo"))
        .expect("engine accepts generated workloads");
    let system = System::launch(&deployment, RtOptions::default()).expect("launch");

    let start = Instant::now();
    for arrival in trace.iter() {
        let due = StdDuration::from_nanos(arrival.time.as_nanos());
        if let Some(wait) = due.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        system.submit(arrival.task, arrival.seq).expect("submit");
    }
    let _ = system.quiesce(StdDuration::from_secs(30));
    // Let trailing idle-reset reports drain.
    std::thread::sleep(StdDuration::from_millis(200));
    let m = system.telemetry();
    let (total_no_realloc, total_realloc) =
        (m.total_no_realloc.snapshot(), m.total_realloc.snapshot());
    let (ir_update, ir_path) = (m.ir_update.snapshot(), m.ir_path.snapshot());
    let (hold, comm) = (m.hold.snapshot(), m.comm.snapshot());
    let (lb_plan, ac_test, release) =
        (m.lb_plan.snapshot(), m.ac_test.snapshot(), m.release.snapshot());
    Scenario {
        report: system.shutdown(),
        total_no_realloc,
        total_realloc,
        ir_update,
        ir_path,
        hold,
        comm,
        lb_plan,
        ac_test,
        release,
    }
}

/// The paper's communication-delay measurement: push an event back and
/// forth 1000 times, then halve the mean/max round trip.
fn ping_pong(iterations: u32) -> HistogramSnapshot {
    const PING: Topic = Topic(100);
    const PONG: Topic = Topic(101);
    let fed = Federation::new(
        2,
        Latency::Uniform { lo: StdDuration::from_micros(283), hi: StdDuration::from_micros(361) },
        7,
    );
    let a = fed.handle(NodeId(0)).expect("node 0");
    let b = fed.handle(NodeId(1)).expect("node 1");
    let pong_rx = a.subscribe(PONG);
    let ping_rx = b.subscribe(PING);
    let stats = Histogram::new();
    for _ in 0..iterations {
        let t0 = Instant::now();
        a.publish(PING, &b"ping"[..]);
        ping_rx.recv_timeout(StdDuration::from_secs(5)).expect("ping delivered");
        b.publish(PONG, &b"pong"[..]);
        pong_rx.recv_timeout(StdDuration::from_secs(5)).expect("pong delivered");
        let rtt = t0.elapsed();
        stats.record((rtt / 2).as_nanos() as u64);
    }
    stats.snapshot()
}

fn row(label: &str, h: &HistogramSnapshot) {
    let us = |ns: u64| ns / 1_000;
    if h.count == 0 {
        println!(
            "{label:<44} {:>8} {:>8} {:>8} {:>8} {:>8}   (no samples)",
            "-", "-", "-", "-", "-"
        );
    } else {
        println!(
            "{label:<44} {:>8.0} {:>8} {:>8} {:>8} {:>8}   ({} samples)",
            h.mean() / 1_000.0,
            us(h.quantile(0.50)),
            us(h.quantile(0.90)),
            us(h.quantile(0.99)),
            us(h.max),
            h.count
        );
    }
}

fn main() {
    let secs = scenario_seconds();
    println!("== Figure 8: service overheads (µs), {secs}s per scenario ==\n");

    println!("running scenario 1/3: AC without LB (J_N_N) ...");
    let no_lb = run_scenario("J_N_N", secs, 1);
    println!("running scenario 2/3: AC with LB (J_N_T) ...");
    let with_lb = run_scenario("J_N_T", secs, 1);
    println!("running scenario 3/3: AC + IR + LB (J_J_T) ...");
    let with_ir = run_scenario("J_J_T", secs, 1);
    println!("measuring communication delay: 1000 ping-pongs ...\n");
    let comm = ping_pong(1_000);

    println!(
        "{:<44} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "row (Figure 7 ops)", "mean", "p50", "p90", "p99", "max"
    );
    row("AC without LB (1+2+4+2+5)", &no_lb.total_no_realloc);
    row("AC with LB, no re-allocation (1+2+3+2+5)", &with_lb.total_no_realloc);
    row("AC with LB, re-allocation (1+2+3+2+6)", &with_lb.total_realloc);
    row("LB, no re-allocation (1+2+3+2+5)", &with_lb.total_no_realloc);
    row("LB, re-allocation (1+2+3+2+6)", &with_lb.total_realloc);
    row("IR on AC side (8)", &with_ir.ir_update);
    row("IR other part (7+2)", &with_ir.ir_path);
    row("Communication delay (2), ping-pong/2", &comm);

    println!("\n-- per-operation detail (beyond the paper; shared-clock one-way) --");
    row("op 1: TE hold + push", &with_lb.hold);
    row("op 2: one-way TE->AC, measured", &with_lb.comm);
    row("op 3: LB plan generation", &with_lb.lb_plan);
    row("op 4: admission test", &with_lb.ac_test);
    row("op 5: release", &with_lb.release);

    println!(
        "\nsanity: completed jobs {} / {} / {}; deadline misses {} / {} / {}",
        no_lb.report.jobs_completed,
        with_lb.report.jobs_completed,
        with_ir.report.jobs_completed,
        no_lb.report.deadline_misses,
        with_lb.report.deadline_misses,
        with_ir.report.deadline_misses,
    );
}
