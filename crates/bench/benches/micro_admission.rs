//! **Micro-benchmark: the cost of one admission decision (ablation A5).**
//!
//! Supports §4.2's claim that "the AUB test is highly efficient when used
//! for AC": measures the AUB term, a full admission test at a realistic
//! current-set size, the greedy load-balancing proposal, and ledger
//! add/expire churn — plus the incremental-vs-brute-force scaling arms
//! (`admission_scaling/*`) at 1k/10k-task current sets, the ablation
//! behind the indexed-ledger admission path (see `rtcm_bench::scaling`).
//!
//! `RTCM_QUICK=1` drops the 10240-entry arms so smoke runs stay fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rtcm_bench::scaling::{probe_once, scaling_controller, scaling_probes};
use rtcm_core::admission::{AdmissionController, AdmissionMode};
use rtcm_core::aub::{aub_term, bound_lhs};
use rtcm_core::balance::LoadBalancer;
use rtcm_core::ledger::{ContributionKey, Lifetime, UtilizationLedger};
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{JobId, ProcessorId, TaskBuilder, TaskId, TaskSpec};
use rtcm_core::time::{Duration, Time};

fn task(id: u32, stages: u16, procs: u16) -> TaskSpec {
    let mut b = TaskBuilder::aperiodic(TaskId(id)).deadline(Duration::from_secs(1));
    for j in 0..stages {
        let primary = ProcessorId(j % procs);
        let replica = ProcessorId((j + 1) % procs);
        b = b.subtask(Duration::from_millis(2), primary, [replica]);
    }
    b.build().expect("bench tasks are valid")
}

/// Controller pre-loaded with `n` current jobs across `procs` processors.
fn loaded_controller(n: u32, procs: u16) -> AdmissionController {
    let cfg: ServiceConfig = "J_N_T".parse().unwrap();
    let mut ac = AdmissionController::new(cfg, procs as usize).unwrap();
    for i in 0..n {
        let t = task(i, 3, procs);
        let _ = ac.handle_arrival(&t, 0, Time::ZERO).unwrap();
    }
    ac
}

fn bench_aub_math(c: &mut Criterion) {
    c.bench_function("aub_term", |b| b.iter(|| aub_term(black_box(0.42))));
    let utils = [0.3, 0.5, 0.2, 0.45, 0.1];
    c.bench_function("aub_bound_lhs_5_stages", |b| b.iter(|| bound_lhs(black_box(utils))));
}

fn bench_admission_test(c: &mut Criterion) {
    // Paper scale: 9 tasks over 5 processors — plus larger current sets.
    // Each measured decision runs on a *clone* of the pre-loaded controller
    // so admitted probes cannot accumulate and silently grow the current
    // set across iterations.
    let mut group = c.benchmark_group("admission_decision");
    for current in [8u32, 32, 128] {
        group.bench_function(format!("current_set_{current}"), |b| {
            let ac = loaded_controller(current, 5);
            let probe = task(10_000, 3, 5);
            b.iter_batched(
                || ac.clone(),
                |mut ac| {
                    let d = ac.handle_arrival(black_box(&probe), 0, Time::ZERO).unwrap();
                    black_box(d)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The scaling ablation: one steady-state admission decision (arrival +
/// expiry churn) against current sets far beyond the paper's 9-task scale,
/// incremental vs. brute-force. Each iteration advances virtual time so
/// the previous probe expires and the next is admitted — state stays
/// bounded without cloning the controller into the measured region.
fn bench_admission_scaling(c: &mut Criterion) {
    let quick = std::env::var("RTCM_QUICK").is_ok();
    let sizes: &[(u32, u16)] =
        if quick { &[(128, 8), (1024, 64)] } else { &[(128, 8), (1024, 64), (10240, 64)] };
    let mut group = c.benchmark_group("admission_scaling");
    for &(n, procs) in sizes {
        for (label, mode) in
            [("incremental", AdmissionMode::Incremental), ("brute", AdmissionMode::BruteForce)]
        {
            group.bench_function(format!("{label}_{n}_p{procs}"), |b| {
                let mut ac = scaling_controller(n, procs, mode);
                // Alternate two probe sizes so consecutive expire+admit
                // rounds never net a processor back to exactly its prior
                // utilization (which would skip the delta work).
                let probes = scaling_probes(procs);
                let mut now = Time::ZERO;
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 1;
                    now = now.saturating_add(Duration::from_millis(2));
                    let probe = &probes[(seq % 2) as usize];
                    black_box(probe_once(&mut ac, black_box(probe), seq, now))
                });
            });
        }
    }
    group.finish();
}

fn bench_lb_proposal(c: &mut Criterion) {
    let ac = loaded_controller(32, 5);
    let probe = task(10_001, 3, 5);
    c.bench_function("lb_greedy_proposal", |b| {
        b.iter(|| black_box(LoadBalancer::propose(&probe, ac.ledger())))
    });
}

fn bench_ledger_churn(c: &mut Criterion) {
    c.bench_function("ledger_add_remove", |b| {
        let mut ledger = UtilizationLedger::new(5);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let key = ContributionKey::new(JobId::new(TaskId(0), seq), 0);
            ledger
                .add(ProcessorId(0), key, 0.01, Lifetime::UntilDeadline(Time::from_nanos(seq)))
                .unwrap();
            ledger.remove(ProcessorId(0), key);
        });
    });
    c.bench_function("ledger_expire_1000", |b| {
        b.iter_batched(
            || {
                let mut ledger = UtilizationLedger::new(5);
                for i in 0..1000u64 {
                    let key = ContributionKey::new(JobId::new(TaskId(0), i), 0);
                    ledger
                        .add(
                            ProcessorId((i % 5) as u16),
                            key,
                            0.0001,
                            Lifetime::UntilDeadline(Time::from_nanos(i)),
                        )
                        .unwrap();
                }
                ledger
            },
            |mut ledger| {
                ledger.expire_until(Time::from_nanos(1_000));
                black_box(ledger)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_aub_math,
    bench_admission_test,
    bench_admission_scaling,
    bench_lb_proposal,
    bench_ledger_churn
);
criterion_main!(benches);
