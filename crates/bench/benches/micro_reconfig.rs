//! **Micro-benchmark: the cost of a live `ServiceConfig` swap.**
//!
//! Quantifies the transition cost of the reconfiguration engine's ledger
//! handover (`AdmissionController::reconfigure`) against current-set
//! size, for both handover directions:
//!
//! * `reseed_{n}` — per-job → per-task: every periodic task with a live
//!   entry is re-reserved under a full AUB re-check (the expensive
//!   direction: one admission-grade check per task);
//! * `drain_{n}` — per-task → per-job: reservations convert in place to
//!   deadline-bound contributions (net-zero utilization deltas);
//! * `ir_axis_{n}` — an IR-only swap, the near-free floor of the
//!   protocol (no ledger work at all);
//! * `cold_rebuild_{n}` — the naive alternative a reconfigurable runtime
//!   avoids: throw the controller away and re-admit the whole current
//!   set from scratch.
//!
//! `RTCM_QUICK=1` drops the largest current sets so smoke runs stay fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rtcm_bench::reconfig::{loaded_reconfig_controller as loaded, reconfig_fixture as fixture};
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::time::{Duration, Time};

fn bench_reconfig_handover(c: &mut Criterion) {
    let quick = std::env::var("RTCM_QUICK").is_ok();
    let sizes: &[(u32, u16)] =
        if quick { &[(64, 8), (256, 16)] } else { &[(64, 8), (256, 16), (1024, 32), (4096, 64)] };
    let mut group = c.benchmark_group("reconfig_handover");
    for &(n, procs) in sizes {
        let (task_set, tasks) = fixture(n, procs);
        let now = Time::ZERO + Duration::from_millis(1);

        // Per-job → per-task: one AUB-checked reseed per periodic task.
        let per_job = loaded("J_N_T", &tasks, procs);
        let target: ServiceConfig = "T_N_T".parse().unwrap();
        group.bench_function(format!("reseed_{n}"), |b| {
            b.iter_batched(
                || per_job.clone(),
                |mut ac| {
                    let report = ac.reconfigure(target, now, &task_set).unwrap();
                    assert_eq!(report.reservations_reseeded as u32, n);
                    black_box(report)
                },
                criterion::BatchSize::SmallInput,
            );
        });

        // Per-task → per-job: in-place conversion, net-zero deltas.
        let per_task = loaded("T_N_T", &tasks, procs);
        let back: ServiceConfig = "J_N_T".parse().unwrap();
        group.bench_function(format!("drain_{n}"), |b| {
            b.iter_batched(
                || per_task.clone(),
                |mut ac| {
                    let report = ac.reconfigure(back, now, &task_set).unwrap();
                    assert_eq!(report.reservations_drained as u32, n);
                    black_box(report)
                },
                criterion::BatchSize::SmallInput,
            );
        });

        // IR-only swap: the protocol floor (no ledger handover).
        let ir_target: ServiceConfig = "J_T_T".parse().unwrap();
        group.bench_function(format!("ir_axis_{n}"), |b| {
            b.iter_batched(
                || per_job.clone(),
                |mut ac| black_box(ac.reconfigure(ir_target, now, &task_set).unwrap()),
                criterion::BatchSize::SmallInput,
            );
        });

        // The restart alternative: rebuild and re-admit everything.
        group.bench_function(format!("cold_rebuild_{n}"), |b| {
            b.iter(|| black_box(loaded("T_N_T", &tasks, procs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconfig_handover);
criterion_main!(benches);
