//! **Micro-benchmark: the telemetry plane's hot-path recording cost.**
//!
//! The whole point of the lock-free registry is that nodes and the
//! manager can record every arrival, admission and completion without
//! noticing the observer. This bench pins that claim to numbers:
//!
//! * a counter increment and a histogram record must cost **under
//!   100 ns** and stay within **2×** of a bare relaxed `fetch_add` (the
//!   cheapest possible "something happened" a thread can write);
//! * a trace-ring append (one short mutex hold) is reported alongside so
//!   its cost stays visible, not assumed;
//! * rendering the full exposition page is timed per scrape — cold-path,
//!   but an operator polling at 1 Hz should know what they spend.
//!
//! The burst section mirrors `micro_events`: timed 16-op windows, p50/p99
//! over samples, written to `BENCH_telemetry.json` at the workspace root.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, Criterion};
use rtcm_telemetry::{Registry, TraceBuffer};

fn bench_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");

    let bare = AtomicU64::new(0);
    group.bench_function("atomic_add_baseline", |b| {
        b.iter(|| black_box(bare.fetch_add(1, Ordering::Relaxed)));
    });

    let reg = Registry::new();
    let counter = reg.counter("rtcm_bench_total", "Bench counter.");
    group.bench_function("counter_inc", |b| {
        b.iter(|| counter.inc());
    });

    let gauge = reg.gauge("rtcm_bench_gauge", "Bench gauge.");
    group.bench_function("gauge_set", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v += 1.0;
            gauge.set(black_box(v));
        });
    });

    let hist = reg.histogram("rtcm_bench_ns", "Bench histogram.");
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            hist.record(black_box(v >> 40));
        });
    });

    let trace = TraceBuffer::default();
    group.bench_function("trace_record", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            trace.record(seq, seq, 0, "arrival", String::new());
        });
    });

    group.bench_function("render_exposition", |b| {
        b.iter(|| black_box(reg.render_text().len()));
    });
    group.finish();
}

/// Times `total` ops in 16-op windows; returns `(mean ns, p50 ns, p99 ns)`.
fn measure(total: usize, mut op: impl FnMut()) -> (f64, f64, f64) {
    const SAMPLE: usize = 16;
    // Warm up outside the books.
    for _ in 0..total / 10 {
        op();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(total / SAMPLE);
    let mut spent = Duration::ZERO;
    for _ in 0..total / SAMPLE {
        let start = Instant::now();
        for _ in 0..SAMPLE {
            op();
        }
        let elapsed = start.elapsed();
        spent += elapsed;
        samples.push(elapsed.as_secs_f64() / SAMPLE as f64 * 1e9);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    (spent.as_secs_f64() * 1e9 / (samples.len() * SAMPLE) as f64, pct(0.50), pct(0.99))
}

fn emit_json() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let total = if quick { 100_000 } else { 1_000_000 };
    let mut rows = Vec::new();
    let mut run = |arm: &str, op: &mut dyn FnMut()| -> f64 {
        let (mean_ns, p50_ns, p99_ns) = measure(total, op);
        println!(
            "telemetry/{arm:<22} mean {mean_ns:>8.1} ns  p50 {p50_ns:>8.1} ns  \
             p99 {p99_ns:>8.1} ns"
        );
        rows.push(serde_json::json!({
            "arm": arm,
            "mean_ns": mean_ns,
            "p50_ns": p50_ns,
            "p99_ns": p99_ns,
        }));
        mean_ns
    };

    let bare = AtomicU64::new(0);
    let baseline = run("atomic_add_baseline", &mut || {
        black_box(bare.fetch_add(1, Ordering::Relaxed));
    });

    let reg = Registry::new();
    let counter = reg.counter("rtcm_bench_total", "Bench counter.");
    let counter_ns = run("counter_inc", &mut || counter.inc());

    let hist = reg.histogram("rtcm_bench_ns", "Bench histogram.");
    let mut v = 1u64;
    let hist_ns = run("histogram_record", &mut || {
        v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        hist.record(black_box(v >> 40));
    });

    let trace = TraceBuffer::default();
    let mut seq = 0u64;
    run("trace_record", &mut || {
        seq += 1;
        trace.record(seq, seq, 0, "arrival", String::new());
    });

    // Scrape cost on a realistically sized page: the rt runtime registers
    // ~30 metrics; approximate with the histogram-bearing bench registry
    // rendered whole.
    run("render_exposition", &mut || {
        black_box(reg.render_text().len());
    });

    // The tentpole's acceptance bars, checked here so a regression fails
    // the bench run itself rather than waiting for a reader to notice.
    let bar = |name: &str, got: f64| {
        assert!(got < 100.0, "{name} mean {got:.1} ns breaches the 100 ns bar");
        assert!(
            got < baseline.max(5.0) * 2.0,
            "{name} mean {got:.1} ns is over 2x the bare atomic add ({baseline:.1} ns)"
        );
    };
    bar("counter_inc", counter_ns);
    bar("histogram_record", hist_ns);

    let doc = serde_json::json!({
        "bench": "micro_telemetry",
        "quick": quick,
        "ops_per_arm": total,
        "bars": { "record_max_ns": 100.0, "record_max_vs_atomic": 2.0 },
        "results": rows,
    });
    // CARGO_MANIFEST_DIR = crates/bench → the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_telemetry.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("plain data")) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_telemetry);

fn main() {
    benches();
    emit_json();
}
