//! **Ablation A4 — sensitivity to the (unstated) aperiodic arrival rate.**
//!
//! The paper says aperiodic arrivals "follow a Poisson distribution" but
//! not at what rate; our default is mean interarrival = 2 × deadline. This
//! sweep shows how the Figure-5 conclusions depend on that choice: denser
//! aperiodic arrivals (smaller factor) lower all ratios, but the strategy
//! ordering — the paper's actual claim — is stable.

use rtcm_core::strategy::ServiceConfig;
use rtcm_core::time::Duration;
use rtcm_sim::{simulate, OverheadModel, SimConfig};
use rtcm_workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};

fn main() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let seeds: u64 = if quick { 2 } else { 5 };
    let horizon = Duration::from_secs(if quick { 30 } else { 120 });
    let combos: Vec<ServiceConfig> =
        ["T_N_N", "J_N_N", "J_J_N", "J_J_J"].iter().map(|s| s.parse().unwrap()).collect();

    println!(
        "== Ablation A4: accepted ratio vs Poisson interarrival factor \
         ({seeds} seeds, {horizon} horizon) =="
    );
    print!("{:>8}", "factor");
    for c in &combos {
        print!("  {:>6}", c.label());
    }
    println!();

    for factor in [0.5, 1.0, 2.0, 4.0, 8.0] {
        print!("{factor:>8.1}");
        for combo in &combos {
            let mut ratios = Vec::new();
            for seed in 0..seeds {
                let tasks = RandomWorkload::default().generate(seed).expect("satisfiable");
                let trace = ArrivalTrace::generate(
                    &tasks,
                    &ArrivalConfig { horizon, poisson_factor: factor, ..ArrivalConfig::default() },
                    seed,
                );
                let report = simulate(
                    &tasks,
                    &trace,
                    &SimConfig {
                        services: *combo,
                        overheads: OverheadModel::paper_calibrated(),
                        seed,
                    },
                )
                .expect("valid combos");
                ratios.push(report.ratio.ratio());
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            print!("  {mean:>6.3}");
        }
        println!();
    }
}
