//! **Sharded-admission-plane scaling: shard count vs. decision makespan.**
//!
//! The sharded plane's claim is structural: arrivals whose candidate
//! placements stay inside one processor group admit against that group's
//! shard controller alone — no cross-shard lock, no system-wide rescan —
//! so a host with S shards can decide S single-homed arrivals
//! concurrently. This bench pins that claim with a **critical-path
//! (makespan) metric** suited to the single-core CI machine:
//!
//! * The workload is [`SHARD_BENCH_BLOCKS`] disjoint per-block arrival
//!   streams over a 64-processor host; blocks nest inside shard groups at
//!   every measured layout (1/2/4/8 shards), so every stream is
//!   single-homed.
//! * Each stream is driven to completion *sequentially* and timed on its
//!   own. Because single-homed streams on different shards share no
//!   mutable state (verified structurally: zero cross decisions, zero
//!   summary refreshes), a shard's wall time is the sum of its own
//!   streams, and the arm's makespan is the maximum over shards — what an
//!   S-core host would pay.
//! * The flat single-core aggregate (sum over all streams) is reported
//!   alongside, so the table never pretends one core got faster.
//!
//! Every arm must decide **identically**: accept counts are asserted
//! equal across all shard layouts and the monolithic baseline (the
//! step-level equivalence bar lives in
//! `crates/core/tests/differential_sharded.rs`).
//!
//! Output: `BENCH_admission.json` at the workspace root with per-arm
//! makespan/flat/throughput rows and the ≥3× speedup bar at 4 shards.

use std::time::Instant;

use rtcm_bench::scaling::{
    shard_block_tasks, SHARD_BENCH_BLOCKS, SHARD_BENCH_PROCS, SHARD_BENCH_TASKS_PER_BLOCK,
};
use rtcm_core::admission::AdmissionController;
use rtcm_core::shard::ShardedAdmissionController;
use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::TaskSpec;
use rtcm_core::time::{Duration, Time};

/// One measured arm: per-block stream times plus decision totals.
struct ArmRun {
    block_ns: Vec<u64>,
    accepts: u64,
    decisions: u64,
}

/// Virtual arrival spacing: one arrival per stream per millisecond, on a
/// globally monotone clock (stream `b` occupies its own window), so lazy
/// expiry behaves identically under every layout.
fn arrival_time(block: usize, k: usize, per_block: usize) -> Time {
    Time::ZERO + Duration::from_millis((block * per_block + k) as u64)
}

/// Drives every block stream through `decide`, timing each block.
fn run_streams(
    per_block: usize,
    tasks: &[Vec<TaskSpec>],
    mut decide: impl FnMut(&TaskSpec, u64, Time) -> bool,
) -> ArmRun {
    let mut run =
        ArmRun { block_ns: Vec::with_capacity(SHARD_BENCH_BLOCKS), accepts: 0, decisions: 0 };
    for (block, specs) in tasks.iter().enumerate() {
        let start = Instant::now();
        for k in 0..per_block {
            let task = &specs[k % SHARD_BENCH_TASKS_PER_BLOCK];
            let seq = (k / SHARD_BENCH_TASKS_PER_BLOCK) as u64;
            let now = arrival_time(block, k, per_block);
            if decide(task, seq, now) {
                run.accepts += 1;
            }
            run.decisions += 1;
        }
        run.block_ns.push(start.elapsed().as_nanos() as u64);
    }
    run
}

/// Makespan under `shards`: blocks map onto shards contiguously
/// (`8 / shards` blocks each); a shard's time is the sum of its blocks,
/// the makespan the maximum over shards.
fn makespan_ns(block_ns: &[u64], shards: usize) -> u64 {
    let per_shard = SHARD_BENCH_BLOCKS / shards;
    (0..shards)
        .map(|s| block_ns[s * per_shard..(s + 1) * per_shard].iter().sum())
        .max()
        .unwrap_or(0)
}

fn main() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let per_block = if quick { 12_500 } else { 125_000 };
    let total = per_block * SHARD_BENCH_BLOCKS;
    let min_speedup = if quick { 2.5 } else { 3.0 };
    let cfg: ServiceConfig = "J_N_N".parse().expect("valid label");
    let tasks: Vec<Vec<TaskSpec>> = (0..SHARD_BENCH_BLOCKS).map(shard_block_tasks).collect();

    let mut rows = Vec::new();
    let mut throughput_by_shards = std::collections::HashMap::new();
    let mut accepts_seen: Option<u64> = None;

    // Monolithic baseline: one controller, one lock domain — its makespan
    // is the flat total regardless of how blocks are grouped.
    let mut mono = AdmissionController::new(cfg, SHARD_BENCH_PROCS).expect("valid config");
    let mono_run = run_streams(per_block, &tasks, |task, seq, now| {
        mono.handle_arrival(task, seq, now).expect("unique jobs").is_accept()
    });
    let mono_flat: u64 = mono_run.block_ns.iter().sum();
    accepts_seen = accepts_seen.or(Some(mono_run.accepts));
    println!(
        "admission_scaling/monolithic  flat {:>7.1} ms  makespan {:>7.1} ms  {:>9.0} dec/s  \
         ({} accepts / {} decisions)",
        mono_flat as f64 / 1e6,
        mono_flat as f64 / 1e6,
        mono_run.decisions as f64 / (mono_flat as f64 / 1e9),
        mono_run.accepts,
        mono_run.decisions,
    );
    rows.push(serde_json::json!({
        "arm": "monolithic",
        "shards": null,
        "decisions": mono_run.decisions,
        "accepts": mono_run.accepts,
        "flat_ns": mono_flat,
        "makespan_ns": mono_flat,
        "throughput_per_s": mono_run.decisions as f64 / (mono_flat as f64 / 1e9),
        "block_ns": mono_run.block_ns,
    }));

    for shards in [1usize, 2, 4, 8] {
        let plane =
            ShardedAdmissionController::new(cfg, SHARD_BENCH_PROCS, shards).expect("valid config");
        let run = run_streams(per_block, &tasks, |task, seq, now| {
            plane.handle_arrival(task, seq, now).expect("unique jobs").is_accept()
        });
        let stats = plane.plane_stats();
        assert_eq!(
            stats.cross_decisions, 0,
            "{shards} shards: single-homed streams must never go cross-shard"
        );
        assert_eq!(
            stats.summary_refreshes, 0,
            "{shards} shards: no stream ever violates, so summaries answer every check"
        );
        assert_eq!(
            Some(run.accepts),
            accepts_seen,
            "{shards} shards: decisions diverged from the monolithic baseline"
        );
        let flat: u64 = run.block_ns.iter().sum();
        let makespan = makespan_ns(&run.block_ns, shards);
        let throughput = run.decisions as f64 / (makespan as f64 / 1e9);
        println!(
            "admission_scaling/shards_{shards}    flat {:>7.1} ms  makespan {:>7.1} ms  {:>9.0} dec/s",
            flat as f64 / 1e6,
            makespan as f64 / 1e6,
            throughput,
        );
        throughput_by_shards.insert(shards, throughput);
        rows.push(serde_json::json!({
            "arm": format!("shards_{shards}"),
            "shards": shards,
            "decisions": run.decisions,
            "accepts": run.accepts,
            "flat_ns": flat,
            "makespan_ns": makespan,
            "throughput_per_s": throughput,
            "block_ns": run.block_ns,
        }));
    }

    // The scaling bar: 4 shards must clear ≥3× (full mode; 2.5× quick)
    // the 1-shard layout's critical-path throughput. The speedup is
    // structural — disjoint shards share nothing on the fast path — so a
    // sustained miss means the fast path started synchronizing. The bar
    // is *reported* (console + JSON `bar_met`) on every run, but the
    // wall-clock-derived assertion only fires under RTCM_BENCH_ASSERT:
    // one slow block on a noisy shared CI runner must not fail the
    // build when the code is correct.
    let speedup = throughput_by_shards[&4] / throughput_by_shards[&1];
    let bar_met = speedup >= min_speedup;
    println!(
        "admission_scaling/speedup_4v1 {speedup:.2}x (bar: {min_speedup:.1}x, \
         met: {bar_met}, {total} decisions)"
    );
    if std::env::var("RTCM_BENCH_ASSERT").is_ok_and(|v| v != "0") {
        assert!(bar_met, "4-shard makespan speedup {speedup:.2}x below the {min_speedup:.1}x bar");
    }

    let doc = serde_json::json!({
        "bench": "admission_scaling",
        "quick": quick,
        "processors": SHARD_BENCH_PROCS,
        "blocks": SHARD_BENCH_BLOCKS,
        "decisions_total": total,
        "metric": "critical-path makespan over per-shard stream times \
                   (single-core measurement; flat_ns is the one-core aggregate)",
        "bars": { "shards_4_vs_1_min_speedup": min_speedup, "met": bar_met },
        "speedup_4v1": speedup,
        "results": rows,
    });
    // CARGO_MANIFEST_DIR = crates/bench → the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_admission.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("plain data")) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
