//! **Micro-benchmark: the bridge wire protocol, binary v1 vs legacy
//! JSON.**
//!
//! PR 6 replaced the bridge's length-prefixed JSON codec (payload bytes
//! as a base-10 JSON array) with a 9-byte binary frame header and
//! zero-copy payload slices. This bench pins the claim with numbers on
//! three axes, all written to `BENCH_wire.json` at the workspace root:
//!
//! * **Wire size** — encoded bytes per canonical protocol event.
//! * **Codec throughput** — encode and decode frames/s per codec, in
//!   isolation (no sockets).
//! * **Bridge receive throughput** — pre-encoded frame streams pushed
//!   through a *real* TCP bridge (read → decode → republish), timed at
//!   the subscriber. The bridge auto-detects the codec per frame, so both
//!   arms run the identical receive path.
//!
//! Criterion arms cover the per-frame codec costs; the JSON document
//! carries the tracked apples-to-apples numbers.

use criterion::{black_box, criterion_group, Criterion};
use rtcm_bench::events::PAYLOAD;
use rtcm_bench::wire::{decode_all, encode_binary, encode_json, BridgeRig};

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");

    group.bench_function("encode_binary", |b| b.iter(|| black_box(encode_binary(1))));
    group.bench_function("encode_json", |b| b.iter(|| black_box(encode_json(1))));

    let binary = encode_binary(64);
    let json = encode_json(64);
    group.bench_function("decode_binary_64", |b| b.iter(|| black_box(decode_all(&binary))));
    group.bench_function("decode_json_64", |b| b.iter(|| black_box(decode_all(&json))));
    group.finish();
}

/// Frames/s for `op` run `rounds` times over a `count`-frame batch.
fn codec_rate(rounds: usize, count: usize, mut op: impl FnMut() -> usize) -> f64 {
    let start = std::time::Instant::now();
    let mut frames = 0usize;
    for _ in 0..rounds {
        frames += black_box(op());
    }
    assert_eq!(frames, rounds * count, "every frame accounted for");
    frames as f64 / start.elapsed().as_secs_f64()
}

fn emit_json() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let (rounds, batch, bridge_batches) = if quick { (200, 256, 20) } else { (2000, 256, 200) };

    // Axis 1: bytes per event on the wire.
    let binary_frame = encode_binary(1).len();
    let json_frame = encode_json(1).len();
    println!(
        "wire/size payload {}B: binary {binary_frame}B, json {json_frame}B ({:.2}x)",
        PAYLOAD.len(),
        json_frame as f64 / binary_frame as f64
    );

    // Axis 2: codec throughput in isolation.
    let binary_stream = encode_binary(batch);
    let json_stream = encode_json(batch);
    let encode_binary_rate = codec_rate(rounds, batch, || {
        black_box(encode_binary(batch));
        batch
    });
    let encode_json_rate = codec_rate(rounds, batch, || {
        black_box(encode_json(batch));
        batch
    });
    let decode_binary_rate = codec_rate(rounds, batch, || decode_all(&binary_stream));
    let decode_json_rate = codec_rate(rounds, batch, || decode_all(&json_stream));
    println!(
        "wire/codec encode {encode_binary_rate:>12.0} vs {encode_json_rate:>12.0} frames/s, \
         decode {decode_binary_rate:>12.0} vs {decode_json_rate:>12.0} frames/s (binary vs json)"
    );

    // Axis 3: a real bridge receive path, per codec.
    let mut bridge_rows = Vec::new();
    for (codec, stream) in [("binary", &binary_stream), ("json", &json_stream)] {
        let mut rig = BridgeRig::new();
        rig.pump(stream, batch); // warm-up: connection + first republish
        let mut total = std::time::Duration::ZERO;
        for _ in 0..bridge_batches {
            total += rig.pump(stream, batch);
        }
        let stats = rig.stats();
        assert_eq!(stats.bridge_rx_errors, 0, "bench streams are clean");
        let rate = (bridge_batches * batch) as f64 / total.as_secs_f64();
        println!("wire/bridge_rx_{codec:<8} {rate:>12.0} events/s");
        bridge_rows.push(serde_json::json!({ "codec": codec, "events_per_sec": rate }));
    }

    let doc = serde_json::json!({
        "bench": "micro_wire",
        "quick": quick,
        "payload_bytes": PAYLOAD.len(),
        "wire_size": {
            "binary_bytes_per_event": binary_frame,
            "json_bytes_per_event": json_frame,
            "json_over_binary": json_frame as f64 / binary_frame as f64,
        },
        "codec": {
            "encode_binary_frames_per_sec": encode_binary_rate,
            "encode_json_frames_per_sec": encode_json_rate,
            "decode_binary_frames_per_sec": decode_binary_rate,
            "decode_json_frames_per_sec": decode_json_rate,
        },
        "bridge_rx": bridge_rows,
    });
    // CARGO_MANIFEST_DIR = crates/bench → the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_wire.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("plain data")) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_wire);

fn main() {
    benches();
    emit_json();
}
