//! **Ablation A3 — AUB vs deferrable-server admission control.**
//!
//! §2 justifies focusing on AUB because, in the authors' prior work
//! (RTAS 2007), it "has a comparable performance to deferrable server, and
//! requires less complex scheduling mechanisms in middleware". This
//! ablation revisits the comparison at the admission-analysis level: the
//! same arrival streams are offered to the AUB controller (no idle
//! resetting — DS has no analogue) and to the per-processor
//! deferrable-server controller of `rtcm_core::server`, and the accepted
//! utilization ratios are compared across server sizings.
//!
//! Expected shape: comparable ratios in the mid-load regime, with DS
//! sensitive to its budget/period sizing (too small a server starves
//! aperiodics; too large a server evicts periodics) — exactly the
//! operational complexity the paper avoids by choosing AUB.

use rtcm_core::metrics::UtilizationRatio;
use rtcm_core::server::{DeferrableServerAc, ServerParams};
use rtcm_core::time::Duration;
use rtcm_sim::{simulate, OverheadModel, SimConfig};
use rtcm_workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};

/// Analysis-level replay: every arrival is offered to the DS controller in
/// time order; released weight is accumulated per the paper's metric.
fn ds_ratio(tasks: &rtcm_core::task::TaskSet, trace: &ArrivalTrace, params: ServerParams) -> f64 {
    let mut ds = DeferrableServerAc::new(params, tasks.processor_count());
    let mut ratio = UtilizationRatio::new();
    let mut seen_periodic: std::collections::HashSet<rtcm_core::task::TaskId> =
        std::collections::HashSet::new();
    let mut admitted_periodic: std::collections::HashSet<rtcm_core::task::TaskId> =
        std::collections::HashSet::new();
    for a in trace.iter() {
        let task = tasks.get(a.task).expect("trace matches set");
        ratio.record_arrival(task.job_utilization());
        if task.is_periodic() {
            if seen_periodic.insert(a.task) && ds.admit_periodic(task) {
                admitted_periodic.insert(a.task);
            }
            if admitted_periodic.contains(&a.task) {
                ratio.record_release(task.job_utilization());
            }
        } else if ds.admit_aperiodic(task, a.seq, a.time) {
            ratio.record_release(task.job_utilization());
        }
    }
    ratio.ratio()
}

fn main() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let seeds: u64 = if quick { 2 } else { 5 };
    let horizon = Duration::from_secs(if quick { 30 } else { 120 });

    // DS sizings: utilization = budget/period.
    let sizings = [
        ("DS 10%/100ms", ServerParams::new(Duration::from_millis(10), Duration::from_millis(100))),
        ("DS 20%/100ms", ServerParams::new(Duration::from_millis(20), Duration::from_millis(100))),
        ("DS 30%/50ms", ServerParams::new(Duration::from_millis(15), Duration::from_millis(50))),
    ];

    println!(
        "== Ablation A3: AUB vs deferrable-server admission \
         ({seeds} seeds, {horizon} horizon) =="
    );
    println!("{:<16} {:>10}", "controller", "ratio");

    let mut aub_ratios = Vec::new();
    let mut ds_results: Vec<(String, Vec<f64>)> =
        sizings.iter().map(|(n, _)| ((*n).to_owned(), Vec::new())).collect();

    for seed in 0..seeds {
        let tasks = RandomWorkload::default().generate(seed).expect("satisfiable");
        let trace = ArrivalTrace::generate(
            &tasks,
            &ArrivalConfig { horizon, ..ArrivalConfig::default() },
            seed,
        );
        // AUB without idle resetting, analysis-equivalent setting.
        let report = simulate(
            &tasks,
            &trace,
            &SimConfig {
                services: "J_N_N".parse().expect("valid"),
                overheads: OverheadModel::zero(),
                seed,
            },
        )
        .expect("valid combo");
        aub_ratios.push(report.ratio.ratio());

        for (i, (_, params)) in sizings.iter().enumerate() {
            let params = params.expect("sizings are valid");
            ds_results[i].1.push(ds_ratio(&tasks, &trace, params));
        }
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!("{:<16} {:>10.3}", "AUB (J_N_N)", mean(&aub_ratios));
    for (name, ratios) in &ds_results {
        println!("{name:<16} {:>10.3}", mean(ratios));
    }
}
