//! **Micro-benchmark: the event-channel publish fast path.**
//!
//! Every layer of the middleware — arrivals, accept/reject decisions,
//! triggers, IR reports, reconfiguration phases, governor ticks — funnels
//! through `Federation::publish`, so its cost at high aperiodic rates is
//! the paper's event-handling overhead in miniature.
//!
//! Two measurement styles:
//!
//! * **Criterion arms** (`publish_steady_*`): per-publish cost against a
//!   long-lived fixture whose subscribers are *bounded* — the steady state
//!   of a sustained storm, drop-oldest backpressure path included, with
//!   flat memory and no fixture teardown inside the timing.
//! * **Burst section** (below the arms, also written to
//!   `BENCH_events.json` at the workspace root): publish bursts against
//!   unbounded subscribers with queue drains *outside* the timed windows —
//!   the apples-to-apples number tracked across commits (throughput plus
//!   p50/p99 per-publish latency over 16-publish samples).

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, Criterion};
use rtcm_bench::events::{
    fanout_fixture, gateway_fixture, remote_fixture, EventsFixture, FANOUT_TOPIC, PAYLOAD,
};

fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("events");

    // Steady-state arms: long-lived fixtures, bounded co-subscribers so
    // queues self-limit (measures the publish+drop path, nothing else).
    for subs in [1usize, 8, 64] {
        let fx = fanout_fixture(0);
        let _bounded: Vec<_> =
            (0..subs).map(|_| fx.publisher.subscribe_bounded(FANOUT_TOPIC, 1024)).collect();
        group.bench_function(format!("publish_steady_{subs}_subs"), |b| {
            b.iter(|| black_box(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD)));
        });
    }

    // Gateway flatness: nodes registered on unrelated topics must cost a
    // pure-local publish nothing. The fixture's unbounded local subscriber
    // is swapped for a bounded one so the undrained steady loop cannot
    // accumulate events (the quiet gateways' receivers stay live — their
    // logs are never published to).
    for gateways in [0u16, 16, 64] {
        let mut fx = gateway_fixture(gateways);
        fx.receivers.remove(0);
        let _bounded = fx.publisher.subscribe_bounded(FANOUT_TOPIC, 1024);
        group.bench_function(format!("publish_steady_quiet_{gateways}_gateways"), |b| {
            b.iter(|| black_box(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD)));
        });
    }
    group.finish();
}

/// Times publish bursts only — fixture construction and queue drains sit
/// between the timed windows. Returns `(publishes/s, p50 ns, p99 ns)` over
/// 16-publish samples.
fn measure_bursts(fx: &EventsFixture, bursts: usize, burst: usize) -> (f64, f64, f64) {
    const SAMPLE: usize = 16;
    let mut samples: Vec<f64> = Vec::with_capacity(bursts * burst / SAMPLE);
    let mut total = Duration::ZERO;
    let mut published = 0usize;
    for _ in 0..bursts {
        for _ in 0..burst / SAMPLE {
            let start = Instant::now();
            for _ in 0..SAMPLE {
                black_box(fx.publisher.publish(FANOUT_TOPIC, PAYLOAD));
            }
            let elapsed = start.elapsed();
            total += elapsed;
            published += SAMPLE;
            samples.push(elapsed.as_secs_f64() / SAMPLE as f64);
        }
        fx.drain(); // untimed: keep queues flat between bursts
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize] * 1e9;
    (published as f64 / total.as_secs_f64(), pct(0.50), pct(0.99))
}

fn emit_json() {
    let quick = std::env::var("RTCM_QUICK").is_ok_and(|v| v != "0");
    let (bursts, burst) = if quick { (20, 512) } else { (200, 512) };
    let mut rows = Vec::new();
    let mut run = |arm: String, fx: &EventsFixture| {
        let (throughput, p50_ns, p99_ns) = measure_bursts(fx, bursts, burst);
        println!(
            "events/burst_{arm:<32} {throughput:>12.0} publishes/s  \
             p50 {p50_ns:>8.0} ns  p99 {p99_ns:>8.0} ns"
        );
        rows.push(serde_json::json!({
            "arm": arm,
            "publishes_per_sec": throughput,
            "p50_publish_ns": p50_ns,
            "p99_publish_ns": p99_ns,
        }));
    };
    for subs in [1usize, 8, 64] {
        run(format!("publish_local_{subs}_subs"), &fanout_fixture(subs));
    }
    for gateways in [0u16, 16, 64] {
        run(format!("publish_quiet_{gateways}_gateways"), &gateway_fixture(gateways));
    }
    for remotes in [4u16, 16] {
        run(format!("publish_remote_{remotes}"), &remote_fixture(remotes));
    }
    let doc = serde_json::json!({
        "bench": "micro_events",
        "quick": quick,
        "burst": burst,
        "bursts": bursts,
        "results": rows,
    });
    // CARGO_MANIFEST_DIR = crates/bench → the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_events.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("plain data")) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_events);

fn main() {
    benches();
    emit_json();
}
