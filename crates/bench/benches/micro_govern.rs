//! **Micro-benchmark: the per-window cost of the adaptation governor.**
//!
//! The governor runs on the control plane, but its evaluation sits inside
//! every sensing window of every governed system — this bench pins what a
//! window costs so sensible window lengths (milliseconds, not seconds)
//! stay justifiable:
//!
//! * `observe_{n}_rules` — one full policy evaluation (streak update +
//!   rule scan) per window, against rule-list width;
//! * `sensor_sample` — turning a cumulative-counter snapshot into window
//!   metrics (the O(1) incremental sensing step);
//! * `governed_cycle_{n}_rules` — sensor + governor together over an
//!   alternating collapse/recovery stream, the realistic steady state.
//!
//! `RTCM_QUICK=1` drops the widest policies so smoke runs stay fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rtcm_bench::govern::{governor_policy, metrics_stream};
use rtcm_core::govern::{CumulativeLoad, Governor, WindowSensor};

fn bench_govern(c: &mut Criterion) {
    let quick = std::env::var("RTCM_QUICK").is_ok();
    let widths: &[usize] = if quick { &[2, 16] } else { &[2, 16, 128] };
    let mut group = c.benchmark_group("govern");
    let current = "J_N_N".parse().unwrap();
    let stream = metrics_stream(64, 4);

    for &rules in widths {
        let governor = Governor::new(governor_policy(rules)).expect("fixture policies validate");
        group.bench_function(format!("observe_{rules}_rules"), |b| {
            b.iter_batched(
                || governor.clone(),
                |mut g| {
                    for m in &stream {
                        black_box(g.observe(current, m));
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });

        group.bench_function(format!("governed_cycle_{rules}_rules"), |b| {
            b.iter_batched(
                || (governor.clone(), WindowSensor::new()),
                |(mut g, mut sensor)| {
                    let mut cum = CumulativeLoad::default();
                    for (i, m) in stream.iter().enumerate() {
                        cum.arrived_jobs += m.arrived_jobs;
                        cum.arrived_utilization += m.arrived_utilization;
                        cum.released_utilization += m.released_utilization;
                        cum.ir_reports += m.ir_reports;
                        let window = sensor.sample(cum, m.aub_slack, m.imbalance);
                        black_box(g.observe(current, &window));
                        black_box(i);
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }

    group.bench_function("sensor_sample", |b| {
        let mut sensor = WindowSensor::new();
        let mut cum = CumulativeLoad::default();
        b.iter(|| {
            cum.arrived_jobs += 10;
            cum.arrived_utilization += 1.0;
            cum.released_utilization += 0.5;
            black_box(sensor.sample(cum, 0.4, 0.2))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_govern);
criterion_main!(benches);
