//! **Figure 6 — LB Strategy Comparison (imbalanced workloads, §7.2).**
//!
//! Like Figure 5 but with all primaries packed on 3 processors at synthetic
//! utilization 0.7 each and all replicas on 2 separate processors
//! (1–3 subtasks/task) — a dynamic CPS where part of the system runs hot.
//!
//! Expected shape (paper): within each (AC, IR) group of three bars,
//! LB-per-task (`*_*_T`) is a large improvement over no LB (`*_*_N`), and
//! LB-per-job (`*_*_J`) adds little over per-task.
//!
//! Run with `cargo bench -p rtcm-bench --bench fig6_imbalanced`; set
//! `RTCM_QUICK=1` for a fast smoke run.

use rtcm_bench::{format_ratio_table, instances, run_combo_experiment, to_json, BenchParams};
use rtcm_sim::OverheadModel;
use rtcm_workload::ImbalancedWorkload;

fn main() {
    let params = BenchParams::from_env();
    let insts = instances(&params.seed_list(), &params.arrival_config(), |seed| {
        ImbalancedWorkload::default().generate(seed).expect("paper parameters are satisfiable")
    });
    let results = run_combo_experiment(&insts, OverheadModel::paper_calibrated());
    println!(
        "{}",
        format_ratio_table(
            &format!(
                "Figure 6: LB strategy comparison, imbalanced workloads \
                 ({} seeds, {} horizon)",
                params.seeds, params.horizon
            ),
            &results
        )
    );

    // The paper's reading of the figure: group by (AC, IR) and compare the
    // three LB settings.
    println!("LB gain within each (AC, IR) group:");
    for group in results.chunks(3) {
        let labels: Vec<_> = group.iter().map(|r| r.config.label()).collect();
        let ratios: Vec<f64> = group.iter().map(rtcm_bench::ComboResult::mean_ratio).collect();
        println!(
            "  {:18}  N={:.3}  T={:.3}  J={:.3}  (T-N delta {:+.3})",
            labels.join("/"),
            ratios[0],
            ratios[1],
            ratios[2],
            ratios[1] - ratios[0],
        );
    }
    if std::env::var("RTCM_JSON").is_ok() {
        println!("{}", to_json(&results));
    }
}
