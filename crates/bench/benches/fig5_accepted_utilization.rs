//! **Figure 5 — Accepted Utilization Ratio (random workloads, §7.1).**
//!
//! 10 random task sets (4 aperiodic + 5 periodic tasks; 1–5 subtasks/task
//! over 5 application processors; deadlines U[250 ms, 10 s]; period =
//! deadline; Poisson aperiodic arrivals; per-processor synthetic
//! utilization 0.5; one replica per subtask) replayed under all 15 valid
//! strategy combinations with paper-calibrated middleware overheads.
//!
//! Expected shape (paper): enabling idle resetting or load balancing
//! raises the ratio; IR-per-job (`*_J_*`) significantly outperforms
//! IR-per-task and no-IR; the `J_J_*` cluster is best with `J_J_J`
//! (co-)highest; LB makes little difference on this *balanced* workload.
//!
//! Run with `cargo bench -p rtcm-bench --bench fig5_accepted_utilization`;
//! set `RTCM_QUICK=1` for a fast smoke run.

use rtcm_bench::{format_ratio_table, instances, run_combo_experiment, to_json, BenchParams};
use rtcm_sim::OverheadModel;
use rtcm_workload::RandomWorkload;

fn main() {
    let params = BenchParams::from_env();
    let insts = instances(&params.seed_list(), &params.arrival_config(), |seed| {
        RandomWorkload::default().generate(seed).expect("paper parameters are satisfiable")
    });
    let results = run_combo_experiment(&insts, OverheadModel::paper_calibrated());
    println!(
        "{}",
        format_ratio_table(
            &format!(
                "Figure 5: accepted utilization ratio, random workloads \
                 ({} seeds, {} horizon)",
                params.seeds, params.horizon
            ),
            &results
        )
    );
    if std::env::var("RTCM_JSON").is_ok() {
        println!("{}", to_json(&results));
    }
}
