//! Mechanism evidence for the per-job load-balancing collapse.
//!
//! `tests/pipeline.rs::per_job_lb_collapse_stays_pinned` pins the
//! *symptom*: on the imbalanced workload, `J_T_J` admits a fraction of
//! the utilization `J_T_T` admits (seed 2: ~0.17 vs ~0.90). This test
//! pins the *mechanism* by replaying the identical arrival trace through
//! a bare [`AdmissionController`] under both configurations and looking
//! at per-task accept counts and placement churn:
//!
//! * Per-task LB proposes each task's placement once and reuses it for
//!   every job, so the dominant task (task 1, u≈0.73, 103 jobs) stacks
//!   its contributions on one pinned replica set and keeps passing the
//!   AUB test. Tasks that would collide with it are rejected outright —
//!   fewer tasks get in, but the admitted utilization is high.
//! * Per-job LB re-proposes against live synthetic utilization on every
//!   arrival. Light tasks scatter across 2–4 distinct replica sets,
//!   leaving a thin film of standing contribution on *every* processor.
//!   The heavy task needs simultaneous headroom on three processors and
//!   almost never finds it: more tasks admit *some* jobs, but the
//!   utilization-weighted acceptance ratio collapses.
//!
//! See DESIGN.md § "The per-job load-balancing collapse" for the full
//! writeup; the numbers asserted here are its evidence trace.

use rtcm_core::admission::{AdmissionController, Decision};
use rtcm_core::task::TaskSet;
use rtcm_core::time::Duration;
use rtcm_workload::{ArrivalConfig, ArrivalTrace, ImbalancedWorkload};
use std::collections::HashSet;

/// Per-task replay outcome: accepted jobs, rejected jobs, and the set of
/// distinct placements (replica-set choices) the accepted jobs used.
struct TaskOutcome {
    accepted: u64,
    rejected: u64,
    placements: HashSet<Vec<u16>>,
}

fn replay(label: &str, tasks: &TaskSet, trace: &ArrivalTrace) -> Vec<TaskOutcome> {
    let mut ac = AdmissionController::new(label.parse().unwrap(), tasks.processor_count()).unwrap();
    let mut out: Vec<TaskOutcome> = tasks
        .iter()
        .map(|_| TaskOutcome { accepted: 0, rejected: 0, placements: HashSet::new() })
        .collect();
    for a in trace.iter() {
        let task = tasks.get(a.task).unwrap();
        let idx = tasks.iter().position(|t| t.id() == a.task).unwrap();
        match ac.handle_arrival(task, a.seq, a.time).unwrap() {
            Decision::Accept { assignment, .. } => {
                out[idx].accepted += 1;
                out[idx].placements.insert(assignment.as_slice().iter().map(|p| p.0).collect());
            }
            Decision::Reject { .. } => out[idx].rejected += 1,
        }
    }
    out
}

/// Fraction of offered utilization that was admitted, weighting each job
/// by its task's chain utilization (Σ C_i / D).
fn weighted_acceptance(tasks: &TaskSet, outcomes: &[TaskOutcome]) -> f64 {
    let util: Vec<f64> = tasks
        .iter()
        .map(|t| {
            t.subtasks()
                .iter()
                .map(|s| s.execution_time.as_secs_f64() / t.deadline().as_secs_f64())
                .sum()
        })
        .collect();
    let admitted: f64 = outcomes.iter().zip(&util).map(|(o, u)| o.accepted as f64 * u).sum();
    let offered: f64 =
        outcomes.iter().zip(&util).map(|(o, u)| (o.accepted + o.rejected) as f64 * u).sum();
    admitted / offered
}

#[test]
fn per_job_lb_scatters_placements_and_starves_the_heavy_task() {
    // The exact workload and seed the pipeline regression pins.
    let tasks = ImbalancedWorkload::default().generate(2).unwrap();
    let cfg = ArrivalConfig { horizon: Duration::from_secs(120), ..ArrivalConfig::default() };
    let trace = ArrivalTrace::generate(&tasks, &cfg, 2);

    let pinned = replay("J_T_T", &tasks, &trace);
    let churned = replay("J_T_J", &tasks, &trace);

    // Task 1 dominates the offered load: chain utilization ~0.73 with a
    // ~1.16 s period, i.e. 103 of the 189 arrivals.
    assert_eq!(pinned[1].accepted + pinned[1].rejected, 103);

    // Per-task LB: every admitted task keeps exactly one placement for
    // the whole run, and the heavy task is admitted wholesale.
    for (i, o) in pinned.iter().enumerate() {
        assert!(o.placements.len() <= 1, "J_T_T task {i} churned placements: {:?}", o.placements);
    }
    assert_eq!(pinned[1].accepted, 103, "J_T_T must admit every heavy-task job");
    assert_eq!(pinned[1].placements.len(), 1);

    // Per-job LB: placements churn — at least one task is spread across
    // three or more distinct replica sets — and the heavy task starves.
    let max_churn = churned.iter().map(|o| o.placements.len()).max().unwrap();
    assert!(max_churn >= 3, "expected per-job placement scatter, max was {max_churn}");
    assert!(
        churned[1].accepted <= 5,
        "heavy task should starve under J_T_J, admitted {}",
        churned[1].accepted
    );

    // Per-job LB admits *more distinct tasks* (the light ones slip in
    // everywhere) yet collapses the utilization-weighted acceptance.
    let tasks_in_pinned = pinned.iter().filter(|o| o.accepted > 0).count();
    let tasks_in_churned = churned.iter().filter(|o| o.accepted > 0).count();
    assert!(
        tasks_in_churned > tasks_in_pinned,
        "scatter admits more tasks ({tasks_in_churned}) than pinning ({tasks_in_pinned})"
    );

    let wa_pinned = weighted_acceptance(&tasks, &pinned);
    let wa_churned = weighted_acceptance(&tasks, &churned);
    assert!(wa_pinned > 0.85, "J_T_T weighted acceptance {wa_pinned:.3}");
    assert!(wa_churned < 0.30, "J_T_J weighted acceptance {wa_churned:.3}");
}
