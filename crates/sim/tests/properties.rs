//! Property-based tests of the simulator: metric bounds, determinism, and
//! AUB soundness over randomized workloads and configurations.

use proptest::collection::vec;
use proptest::prelude::*;

use rtcm_core::strategy::ServiceConfig;
use rtcm_core::task::{ProcessorId, TaskBuilder, TaskId, TaskSet, TaskSpec};
use rtcm_core::time::Duration;
use rtcm_sim::{simulate, simulate_recorded, SimConfig};
use rtcm_workload::{ArrivalConfig, ArrivalTrace, Phasing};

const PROCS: u16 = 3;

/// Small random task: 1–3 stages, deadline 40–400 ms, modest utilization.
fn arb_task(id: u32) -> impl Strategy<Value = TaskSpec> {
    let deadline_ms = 40u64..400;
    let stages = vec((0..PROCS, 0..PROCS), 1..4);
    (deadline_ms, stages, any::<bool>(), 2u64..12).prop_map(
        move |(deadline_ms, stages, periodic, exec_pct)| {
            let deadline = Duration::from_millis(deadline_ms);
            let n = stages.len() as u64;
            // Per-stage execution: a percentage of the deadline split over
            // stages, keeping total well under the deadline.
            let exec = Duration::from_millis(((deadline_ms * exec_pct) / 100 / n).max(1));
            let mut b = if periodic {
                TaskBuilder::periodic(TaskId(id), deadline)
            } else {
                TaskBuilder::aperiodic(TaskId(id)).deadline(deadline)
            };
            for (primary, replica) in &stages {
                b = b.subtask(exec, ProcessorId(*primary), [ProcessorId(*replica)]);
            }
            b.build().expect("generated tasks are valid")
        },
    )
}

fn arb_task_set(n: usize) -> impl Strategy<Value = TaskSet> {
    (0..n as u32)
        .map(arb_task)
        .collect::<Vec<_>>()
        .prop_map(|tasks| TaskSet::from_tasks(tasks).expect("distinct ids"))
}

fn trace_for(tasks: &TaskSet, seed: u64) -> ArrivalTrace {
    ArrivalTrace::generate(
        tasks,
        &ArrivalConfig {
            horizon: Duration::from_secs(3),
            poisson_factor: 1.0,
            phasing: Phasing::RandomPhase,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ratio bounds, count consistency and record consistency for every
    /// valid combination over random workloads.
    #[test]
    fn metrics_are_consistent(tasks in arb_task_set(5), combo_idx in 0usize..15, seed in 0u64..1000) {
        let combo = ServiceConfig::all_valid()[combo_idx];
        let trace = trace_for(&tasks, seed);
        let (report, records) =
            simulate_recorded(&tasks, &trace, &SimConfig::new(combo)).unwrap();
        let ratio = report.ratio.ratio();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");
        prop_assert_eq!(report.ratio.arrived_jobs() as usize, trace.len());
        prop_assert!(report.ratio.released_jobs() <= report.ratio.arrived_jobs());
        prop_assert_eq!(
            records.iter().filter(|r| r.released).count() as u64,
            report.ratio.released_jobs()
        );
        // Every released job completes (the simulator drains fully).
        prop_assert_eq!(report.jobs_completed, report.ratio.released_jobs());
        // CPU busy time never exceeds the simulated span.
        for busy in &report.cpu_busy {
            prop_assert!(*busy <= report.end.elapsed_since(rtcm_core::time::Time::ZERO));
        }
    }

    /// With zero overheads, the AUB guarantee holds: no admitted job ever
    /// misses its deadline, regardless of workload or combination.
    #[test]
    fn aub_soundness(tasks in arb_task_set(5), combo_idx in 0usize..15, seed in 0u64..1000) {
        let combo = ServiceConfig::all_valid()[combo_idx];
        let trace = trace_for(&tasks, seed);
        let report = simulate(&tasks, &trace, &SimConfig::ideal(combo)).unwrap();
        prop_assert_eq!(report.deadline_misses, 0, "combo {}", combo.label());
    }

    /// Bit-for-bit determinism.
    #[test]
    fn determinism(tasks in arb_task_set(4), combo_idx in 0usize..15, seed in 0u64..1000) {
        let combo = ServiceConfig::all_valid()[combo_idx];
        let trace = trace_for(&tasks, seed);
        let cfg = SimConfig { seed, ..SimConfig::new(combo) };
        let a = simulate(&tasks, &trace, &cfg).unwrap();
        let b = simulate(&tasks, &trace, &cfg).unwrap();
        prop_assert_eq!(a, b);
    }
}
