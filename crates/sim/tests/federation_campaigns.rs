//! Seeded failure campaigns over the federated simulator: the
//! hundreds-of-seeds sweep asserting the two-phase swap protocol's
//! safety invariants under randomized partitions, crash-during-prepare,
//! flapping bridges and clock skew across 8 simulated hosts.
//!
//! Every campaign is checked for:
//! * no partial swap (applied ⇒ oracle-committed, label-exact),
//! * abort-reason accounting (every epoch resolves; committed epochs are
//!   applied at least by their coordinator),
//! * loss-freedom (admitted = completed + lost-on-crash + in-flight;
//!   never-crashed hosts lose nothing),
//! * terminal convergence once the faults heal,
//! * byte-for-byte trace reproducibility per seed.

use rtcm_sim::{Campaign, CampaignSummary, EpochOutcome};

const HOSTS: u16 = 8;
const HORIZON_MS: u64 = 600;
const SEEDS: u64 = 100;

#[test]
fn hundred_seed_storm_holds_every_invariant() {
    let mut summary = CampaignSummary::default();
    for seed in 0..SEEDS {
        let outcome = Campaign::randomized(seed, HOSTS, HORIZON_MS)
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            outcome.is_clean(),
            "seed {seed} violated invariants:\n  {}",
            outcome.violations.join("\n  ")
        );
        summary.absorb(&outcome);
    }
    assert_eq!(summary.runs, SEEDS);
    assert_eq!(summary.violations, 0);
    assert_eq!(summary.converged, SEEDS, "every campaign must converge after healing");
    // The storm must actually exercise the protocol's paths: commits,
    // silence-aborts and coordinator crashes all occur across the sweep.
    assert!(summary.committed > 0, "no swap ever committed: {summary:?}");
    assert!(summary.aborted_timeout > 0, "no swap ever aborted by silence: {summary:?}");
    assert!(summary.coordinator_crashed > 0, "no coordinator ever crashed: {summary:?}");
    assert!(summary.msgs_dropped > 0, "the network never misbehaved: {summary:?}");
    assert!(summary.admitted > 0);
}

#[test]
fn every_seed_reproduces_its_trace_byte_for_byte() {
    for seed in [0, 17, 41, 99] {
        let campaign = Campaign::randomized(seed, HOSTS, HORIZON_MS);
        let a = campaign.run().unwrap();
        let b = campaign.run().unwrap();
        assert_eq!(
            a.report.trace.join("\n"),
            b.report.trace.join("\n"),
            "seed {seed} diverged between identical runs"
        );
        assert_eq!(a.report.events, b.report.events);
        assert_eq!(a.report.msgs_sent, b.report.msgs_sent);
        assert_eq!(a.report.msgs_dropped, b.report.msgs_dropped);
    }
}

#[test]
fn replica_failover_campaign_commits_and_shifts_load() {
    let outcome = Campaign::replica_failover(17, HOSTS, 2_000, 1_000).run().unwrap();
    outcome.assert_clean();
    let report = &outcome.report;
    assert_eq!(report.epochs.len(), 1);
    assert_eq!(report.epochs[0].outcome, Some(EpochOutcome::Committed));
    // Every host witnessed the commit over healthy links.
    for h in &report.hosts {
        assert_eq!(h.final_config, "J_T_T", "host {} missed the commit", h.host);
    }
    // The imbalanced host's standby processors carry real load after the
    // swap to per-task balancing.
    let standby_busy: u64 = report.hosts[0].busy_ns[3..].iter().sum();
    assert!(standby_busy > 0);
}
