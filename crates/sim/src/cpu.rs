//! A single simulated processor: preemptive fixed-priority dispatching of
//! subjobs in virtual time.
//!
//! This is the execution model the AUB analysis assumes: one CPU per
//! processor, the highest-priority ready subjob always running, preemption
//! on arrival of more-urgent work. Completion events are validated through
//! generation tokens, the standard discrete-event pattern for cancellable
//! timers: every (re)start of a subjob bumps the generation, so completion
//! events scheduled for preempted runs are recognized as stale and ignored.
//!
//! # Examples
//!
//! ```
//! use rtcm_core::priority::Priority;
//! use rtcm_core::time::{Duration, Time};
//! use rtcm_sim::cpu::{Completion, Cpu};
//!
//! let mut cpu: Cpu<&str> = Cpu::new();
//! let start = cpu
//!     .enqueue(Time::ZERO, Priority(5), Duration::from_millis(10), "low")
//!     .expect("idle CPU starts immediately");
//!
//! // A more urgent subjob preempts; the old completion becomes stale.
//! let preempt = cpu
//!     .enqueue(Time::ZERO + Duration::from_millis(2), Priority(1), Duration::from_millis(1), "high")
//!     .expect("higher priority preempts");
//! assert!(matches!(cpu.complete(start.completes_at, start.gen), Completion::Stale));
//! # let _ = preempt;
//! ```

use std::collections::BinaryHeap;

use rtcm_core::priority::Priority;
use rtcm_core::time::{Duration, Time};

/// Directive returned when a subjob starts running: the caller must
/// schedule a [`Cpu::complete`] call at `completes_at` carrying `gen`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Started {
    /// Generation token validating the completion event.
    pub gen: u64,
    /// Virtual instant at which the run finishes if not preempted.
    pub completes_at: Time,
}

/// Result of delivering a completion event.
#[derive(Debug)]
pub enum Completion<T> {
    /// The event belonged to a preempted run; ignore it.
    Stale,
    /// The running subjob finished.
    Done {
        /// The finished subjob's payload.
        payload: T,
        /// The next subjob started from the ready queue, if any; `None`
        /// means the processor is now idle.
        next: Option<Started>,
    },
}

#[derive(Debug)]
struct Ready<T> {
    priority: Priority,
    seq: u64,
    remaining: Duration,
    payload: T,
}

impl<T> PartialEq for Ready<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Ready<T> {}

impl<T> PartialOrd for Ready<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Ready<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: more urgent first, then FIFO by enqueue sequence.
        self.priority.cmp_urgency(other.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct Running<T> {
    priority: Priority,
    seq: u64,
    started_at: Time,
    remaining_at_start: Duration,
    gen: u64,
    payload: T,
}

/// One observable scheduling transition (only recorded when tracing is
/// enabled via [`Cpu::set_tracing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition<T> {
    /// The subjob began (or resumed) executing.
    Start {
        /// When.
        at: Time,
        /// Whose payload.
        payload: T,
    },
    /// The subjob was preempted by more urgent work.
    Preempt {
        /// When.
        at: Time,
        /// Whose payload.
        payload: T,
    },
    /// The subjob finished.
    Finish {
        /// When.
        at: Time,
        /// Whose payload.
        payload: T,
    },
}

/// A preemptive fixed-priority single-CPU model.
#[derive(Debug)]
pub struct Cpu<T> {
    ready: BinaryHeap<Ready<T>>,
    running: Option<Running<T>>,
    next_seq: u64,
    next_gen: u64,
    busy_since: Option<Time>,
    busy_accum: Duration,
    trace: Option<Vec<Transition<T>>>,
}

impl<T> Default for Cpu<T> {
    fn default() -> Self {
        Cpu::new()
    }
}

impl<T> Cpu<T> {
    /// Creates an idle CPU.
    #[must_use]
    pub fn new() -> Self {
        Cpu {
            ready: BinaryHeap::new(),
            running: None,
            next_seq: 0,
            next_gen: 0,
            busy_since: None,
            busy_accum: Duration::ZERO,
            trace: None,
        }
    }

    /// Enables or disables transition tracing.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Drains recorded transitions (empty when tracing is off).
    pub fn drain_transitions(&mut self) -> Vec<Transition<T>> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Returns true if nothing is running or ready.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.ready.is_empty()
    }

    /// Number of subjobs waiting (not counting the running one).
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Total virtual time spent busy up to the last state change.
    #[must_use]
    pub fn busy_time(&self) -> Duration {
        self.busy_accum
    }
}

impl<T: Clone> Cpu<T> {
    /// Offers a subjob with `exec` remaining execution at `now`.
    ///
    /// Returns `Some(Started)` when this call changed which subjob is
    /// running (idle start or preemption); the caller must schedule the
    /// returned completion. Returns `None` when the subjob was queued
    /// behind the current run.
    pub fn enqueue(
        &mut self,
        now: Time,
        priority: Priority,
        exec: Duration,
        payload: T,
    ) -> Option<Started> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let incoming = Ready { priority, seq, remaining: exec, payload };

        match self.running.take() {
            None => {
                self.ready.push(incoming);
                self.busy_since.get_or_insert(now);
                Some(self.start_next(now))
            }
            Some(run) => {
                if incoming.priority.is_higher_than(run.priority) {
                    // Preempt: bank the consumed time and requeue the rest.
                    if let Some(trace) = &mut self.trace {
                        trace.push(Transition::Preempt { at: now, payload: run.payload.clone() });
                    }
                    let consumed = now.elapsed_since(run.started_at);
                    let remaining = run.remaining_at_start.saturating_sub(consumed);
                    self.ready.push(Ready {
                        priority: run.priority,
                        seq: run.seq,
                        remaining,
                        payload: run.payload,
                    });
                    self.ready.push(incoming);
                    Some(self.start_next(now))
                } else {
                    self.ready.push(incoming);
                    self.running = Some(run);
                    None
                }
            }
        }
    }

    /// Delivers a completion event carrying generation `gen` at `now`.
    pub fn complete(&mut self, now: Time, gen: u64) -> Completion<T> {
        match &self.running {
            Some(run) if run.gen == gen => {}
            _ => return Completion::Stale,
        }
        let run = self.running.take().expect("checked above");
        debug_assert_eq!(now, run.started_at + run.remaining_at_start, "completion drift");
        if let Some(trace) = &mut self.trace {
            trace.push(Transition::Finish { at: now, payload: run.payload.clone() });
        }
        let next = if self.ready.is_empty() {
            if let Some(since) = self.busy_since.take() {
                self.busy_accum += now.elapsed_since(since);
            }
            None
        } else {
            Some(self.start_next(now))
        };
        Completion::Done { payload: run.payload, next }
    }

    fn start_next(&mut self, now: Time) -> Started {
        debug_assert!(self.running.is_none());
        let head = self.ready.pop().expect("start_next requires ready work");
        let gen = self.next_gen;
        self.next_gen += 1;
        let completes_at = now + head.remaining;
        if let Some(trace) = &mut self.trace {
            trace.push(Transition::Start { at: now, payload: head.payload.clone() });
        }
        self.running = Some(Running {
            priority: head.priority,
            seq: head.seq,
            started_at: now,
            remaining_at_start: head.remaining,
            gen,
            payload: head.payload,
        });
        Started { gen, completes_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> Time {
        Time::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn idle_start_and_complete() {
        let mut cpu: Cpu<u32> = Cpu::new();
        assert!(cpu.is_idle());
        let s = cpu.enqueue(at(0), Priority(1), Duration::from_micros(10), 7).unwrap();
        assert_eq!(s.completes_at, at(10));
        match cpu.complete(at(10), s.gen) {
            Completion::Done { payload, next } => {
                assert_eq!(payload, 7);
                assert!(next.is_none());
            }
            Completion::Stale => panic!("live completion"),
        }
        assert!(cpu.is_idle());
        assert_eq!(cpu.busy_time(), Duration::from_micros(10));
    }

    #[test]
    fn lower_priority_queues_behind() {
        let mut cpu: Cpu<&str> = Cpu::new();
        let s = cpu.enqueue(at(0), Priority(1), Duration::from_micros(10), "urgent").unwrap();
        assert!(cpu.enqueue(at(2), Priority(5), Duration::from_micros(4), "later").is_none());
        assert_eq!(cpu.ready_count(), 1);
        match cpu.complete(s.completes_at, s.gen) {
            Completion::Done { payload, next } => {
                assert_eq!(payload, "urgent");
                let n = next.unwrap();
                assert_eq!(n.completes_at, at(14));
            }
            Completion::Stale => panic!(),
        }
    }

    #[test]
    fn preemption_banks_progress() {
        let mut cpu: Cpu<&str> = Cpu::new();
        let low = cpu.enqueue(at(0), Priority(5), Duration::from_micros(10), "low").unwrap();
        // Preempt at 4µs: low has 6µs left.
        let high = cpu.enqueue(at(4), Priority(1), Duration::from_micros(3), "high").unwrap();
        assert_eq!(high.completes_at, at(7));
        // The old completion is stale.
        assert!(matches!(cpu.complete(low.completes_at, low.gen), Completion::Stale));
        // High finishes; low resumes with its remaining 6µs.
        let resumed = match cpu.complete(at(7), high.gen) {
            Completion::Done { payload, next } => {
                assert_eq!(payload, "high");
                next.unwrap()
            }
            Completion::Stale => panic!(),
        };
        assert_eq!(resumed.completes_at, at(13));
        match cpu.complete(at(13), resumed.gen) {
            Completion::Done { payload, next } => {
                assert_eq!(payload, "low");
                assert!(next.is_none());
            }
            Completion::Stale => panic!(),
        }
    }

    #[test]
    fn equal_priority_is_fifo_and_non_preemptive() {
        let mut cpu: Cpu<u32> = Cpu::new();
        let first = cpu.enqueue(at(0), Priority(3), Duration::from_micros(5), 1).unwrap();
        assert!(cpu.enqueue(at(1), Priority(3), Duration::from_micros(5), 2).is_none());
        assert!(cpu.enqueue(at(2), Priority(3), Duration::from_micros(5), 3).is_none());
        let mut order = Vec::new();
        let mut next = Some(first);
        let mut now = at(5);
        while let Some(s) = next {
            match cpu.complete(now, s.gen) {
                Completion::Done { payload, next: n } => {
                    order.push(payload);
                    next = n.inspect(|n| now = n.completes_at);
                }
                Completion::Stale => panic!(),
            }
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn preempted_job_resumes_before_same_priority_later_arrivals() {
        let mut cpu: Cpu<&str> = Cpu::new();
        let low = cpu.enqueue(at(0), Priority(5), Duration::from_micros(10), "old").unwrap();
        let high = cpu.enqueue(at(4), Priority(1), Duration::from_micros(2), "hi").unwrap();
        assert!(matches!(cpu.complete(low.completes_at, low.gen), Completion::Stale));
        // Another priority-5 subjob arrives while high runs.
        assert!(cpu.enqueue(at(5), Priority(5), Duration::from_micros(1), "new").is_none());
        let resumed = match cpu.complete(at(6), high.gen) {
            Completion::Done { next, .. } => next.unwrap(),
            Completion::Stale => panic!(),
        };
        // "old" (seq 0) beats "new" (seq 2) at equal priority.
        match cpu.complete(resumed.completes_at, resumed.gen) {
            Completion::Done { payload, .. } => assert_eq!(payload, "old"),
            Completion::Stale => panic!(),
        }
    }

    #[test]
    fn tracing_records_start_preempt_finish() {
        let mut cpu: Cpu<&str> = Cpu::new();
        cpu.set_tracing(true);
        let low = cpu.enqueue(at(0), Priority(5), Duration::from_micros(10), "low").unwrap();
        let high = cpu.enqueue(at(4), Priority(1), Duration::from_micros(2), "hi").unwrap();
        assert!(matches!(cpu.complete(low.completes_at, low.gen), Completion::Stale));
        let resumed = match cpu.complete(at(6), high.gen) {
            Completion::Done { next, .. } => next.unwrap(),
            Completion::Stale => panic!(),
        };
        let _ = cpu.complete(resumed.completes_at, resumed.gen);
        let t = cpu.drain_transitions();
        assert_eq!(
            t,
            vec![
                Transition::Start { at: at(0), payload: "low" },
                Transition::Preempt { at: at(4), payload: "low" },
                Transition::Start { at: at(4), payload: "hi" },
                Transition::Finish { at: at(6), payload: "hi" },
                Transition::Start { at: at(6), payload: "low" },
                Transition::Finish { at: at(12), payload: "low" },
            ]
        );
        // Draining empties the buffer.
        assert!(cpu.drain_transitions().is_empty());
        // Tracing off records nothing.
        cpu.set_tracing(false);
        let s = cpu.enqueue(at(20), Priority(1), Duration::from_micros(1), "x").unwrap();
        let _ = cpu.complete(s.completes_at, s.gen);
        assert!(cpu.drain_transitions().is_empty());
    }

    #[test]
    fn busy_time_accumulates_over_busy_periods() {
        let mut cpu: Cpu<u32> = Cpu::new();
        let a = cpu.enqueue(at(0), Priority(1), Duration::from_micros(5), 0).unwrap();
        match cpu.complete(at(5), a.gen) {
            Completion::Done { .. } => {}
            Completion::Stale => panic!(),
        }
        let b = cpu.enqueue(at(100), Priority(1), Duration::from_micros(7), 1).unwrap();
        match cpu.complete(at(107), b.gen) {
            Completion::Done { .. } => {}
            Completion::Stale => panic!(),
        }
        assert_eq!(cpu.busy_time(), Duration::from_micros(12));
    }
}
