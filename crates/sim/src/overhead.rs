//! The middleware overhead model: where virtual time is spent outside
//! subtask execution.
//!
//! Defaults are calibrated to the paper's Figure 8 measurements on the
//! KURT-Linux testbed, so that simulated end-to-end service delays land in
//! the same ≈1.1–1.3 ms range: one-way communication ≈ 322 µs mean / 361 µs
//! max, total AC path ≈ 1114 µs (hold + 2×comm + test + release), LB adding
//! a few µs, and the AC-side idle-reset update ≈ 17 µs.
//! [`OverheadModel::zero`] turns every overhead off, which is the setting
//! used to validate AUB soundness (no admitted job may miss its deadline
//! when the analysis' zero-overhead assumptions hold).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use rtcm_core::time::Duration;

/// A sampled one-way message delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayModel {
    /// No delay at all.
    None,
    /// The same delay for every message.
    Constant(Duration),
    /// Uniformly distributed in `[lo, hi]`.
    Uniform {
        /// Minimum delay.
        lo: Duration,
        /// Maximum delay.
        hi: Duration,
    },
}

impl DelayModel {
    /// Draws one delay.
    pub fn sample(&self, rng: &mut StdRng) -> Duration {
        match *self {
            DelayModel::None => Duration::ZERO,
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    Duration::from_nanos(rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
                }
            }
        }
    }

    /// The mean of the model.
    #[must_use]
    pub fn mean(&self) -> Duration {
        match *self {
            DelayModel::None => Duration::ZERO,
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => (lo + hi) / 2,
        }
    }
}

/// Virtual-time costs of the middleware operations of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// One-way event-channel delay between distinct processors (op 2).
    pub comm: DelayModel,
    /// TE: hold the task and push the "Task Arrive" event (op 1).
    pub te_hold: Duration,
    /// TE/subtask: release a job on its processor (ops 5/6).
    pub te_release: Duration,
    /// AC: apply the admission test (op 4).
    pub ac_test: Duration,
    /// LB: generate an acceptable deployment plan (op 3); only charged when
    /// load balancing is enabled.
    pub lb_plan: Duration,
    /// IR at the AC side: update synthetic utilization (op 8).
    pub ir_update: Duration,
    /// IR at the application side: collect and push the report (op 7);
    /// spent during idle time, so it delays the report but no application
    /// work.
    pub ir_report: Duration,
}

impl OverheadModel {
    /// Figure-8-calibrated defaults (see module docs).
    #[must_use]
    pub fn paper_calibrated() -> Self {
        OverheadModel {
            comm: DelayModel::Uniform {
                lo: Duration::from_micros(283),
                hi: Duration::from_micros(361),
            },
            te_hold: Duration::from_micros(150),
            te_release: Duration::from_micros(150),
            ac_test: Duration::from_micros(170),
            lb_plan: Duration::from_micros(3),
            ir_update: Duration::from_micros(17),
            ir_report: Duration::from_micros(340),
        }
    }

    /// No overheads anywhere: the AUB analysis' idealized setting.
    #[must_use]
    pub fn zero() -> Self {
        OverheadModel {
            comm: DelayModel::None,
            te_hold: Duration::ZERO,
            te_release: Duration::ZERO,
            ac_test: Duration::ZERO,
            lb_plan: Duration::ZERO,
            ir_update: Duration::ZERO,
            ir_report: Duration::ZERO,
        }
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_and_none_sample_exactly() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::None.sample(&mut rng), Duration::ZERO);
        let d = Duration::from_micros(322);
        assert_eq!(DelayModel::Constant(d).sample(&mut rng), d);
        assert_eq!(DelayModel::Constant(d).mean(), d);
    }

    #[test]
    fn uniform_stays_in_range_and_centres() {
        let mut rng = StdRng::seed_from_u64(1);
        let m =
            DelayModel::Uniform { lo: Duration::from_micros(100), hi: Duration::from_micros(200) };
        let mut sum = Duration::ZERO;
        const N: u64 = 4_000;
        for _ in 0..N {
            let s = m.sample(&mut rng);
            assert!(s >= Duration::from_micros(100) && s <= Duration::from_micros(200));
            sum += s;
        }
        let mean = sum / N;
        assert!(
            mean > Duration::from_micros(145) && mean < Duration::from_micros(155),
            "empirical mean {mean}"
        );
        assert_eq!(m.mean(), Duration::from_micros(150));
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Uniform { lo: Duration::from_micros(5), hi: Duration::from_micros(5) };
        assert_eq!(m.sample(&mut rng), Duration::from_micros(5));
    }

    #[test]
    fn zero_model_is_all_zero() {
        let z = OverheadModel::zero();
        assert_eq!(z.comm.mean(), Duration::ZERO);
        assert!(z.te_hold.is_zero());
        assert!(z.ac_test.is_zero());
        assert!(z.ir_update.is_zero());
    }

    #[test]
    fn calibrated_total_ac_path_matches_figure8_scale() {
        // hold + comm + test + comm + release ≈ 1114 µs in the paper.
        let m = OverheadModel::paper_calibrated();
        let total = m.te_hold + m.comm.mean() + m.ac_test + m.comm.mean() + m.te_release;
        let us = total.as_micros();
        assert!((1_000..=1_300).contains(&us), "total AC path {us}µs");
    }
}
