//! Serde-backed fault schedules: the campaign input format.
//!
//! A [`FaultSchedule`] is a time-sorted list of primitive fault actions —
//! partitions, crashes, clock skew/drift injections, reconfiguration
//! requests, vote holds. The *same* serialized format drives two
//! executors:
//!
//! * the deterministic federation simulator ([`super::federation`]), which
//!   interprets every action in virtual time, and
//! * the multi-process harness orchestrator (`rtcm-harness`), which maps
//!   the subset that has a physical analogue onto real processes and real
//!   TCP bridges.
//!
//! That shared format is what makes the sim-vs-threaded cross-check
//! meaningful: one schedule, two execution substrates, same invariants.
//!
//! Composite behaviours (flapping bridges, crash-during-prepare) are
//! *builders* that emit primitive actions — the executors never need to
//! know about them.

use serde::{Deserialize, Serialize};

/// One primitive fault action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Take both link directions between hosts `a` and `b` down.
    Partition {
        /// One end of the bridge.
        a: u16,
        /// The other end.
        b: u16,
    },
    /// Bring both link directions between hosts `a` and `b` back up.
    Heal {
        /// One end of the bridge.
        a: u16,
        /// The other end.
        b: u16,
    },
    /// Crash a host: it stops executing, loses its in-flight jobs and its
    /// quorum state (fences, pending swaps).
    Crash {
        /// The host to crash.
        host: u16,
    },
    /// Restart a crashed host with a fresh admission controller under its
    /// last committed configuration.
    Restart {
        /// The host to restart.
        host: u16,
    },
    /// Step the host's local clock by `skew_us` microseconds (positive =
    /// jump forward).
    SkewClock {
        /// The host whose clock to step.
        host: u16,
        /// Signed step in microseconds.
        skew_us: i64,
    },
    /// Change the host's clock rate error to `ppm` parts-per-million.
    DriftClock {
        /// The host whose rate to change.
        host: u16,
        /// New rate error (positive = fast clock).
        ppm: i64,
    },
    /// Ask the host to coordinate a two-phase swap to `target` (a service
    /// configuration label such as `"J_T_T"`).
    Swap {
        /// The coordinating host.
        host: u16,
        /// Target configuration label.
        target: String,
    },
    /// Set or clear the host's vote hold: while held it ignores foreign
    /// prepares entirely (the harness's `hold` verb).
    Hold {
        /// The host whose votes to hold.
        host: u16,
        /// True to hold, false to release.
        value: bool,
    },
}

/// One scheduled action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the action fires, in milliseconds from campaign start (on the
    /// global timeline for the simulator, the orchestrator's wall clock
    /// for the harness).
    pub at_ms: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A campaign's fault script: what goes wrong, and when.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultSchedule {
    /// The scheduled actions. Executors process them in `at_ms` order
    /// (ties in listed order).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (a fair-weather campaign).
    #[must_use]
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Appends an action at `at_ms`.
    pub fn push(&mut self, at_ms: u64, action: FaultAction) -> &mut Self {
        self.events.push(FaultEvent { at_ms, action });
        self
    }

    /// Appends a flapping bridge: the `a`↔`b` link goes down/up `cycles`
    /// times starting at `start_ms`, spending `down_ms` down and `up_ms`
    /// up per cycle.
    pub fn flap(
        &mut self,
        a: u16,
        b: u16,
        start_ms: u64,
        cycles: u32,
        down_ms: u64,
        up_ms: u64,
    ) -> &mut Self {
        let mut t = start_ms;
        for _ in 0..cycles {
            self.push(t, FaultAction::Partition { a, b });
            t += down_ms;
            self.push(t, FaultAction::Heal { a, b });
            t += up_ms;
        }
        self
    }

    /// Appends a crash-during-prepare: `coordinator` starts a swap to
    /// `target` at `at_ms`, and `victim` (a required voter) crashes
    /// `victim_lag_ms` later — within the prepare window if the lag is
    /// shorter than the ack timeout. The victim restarts after
    /// `downtime_ms`.
    pub fn crash_during_prepare(
        &mut self,
        coordinator: u16,
        victim: u16,
        target: &str,
        at_ms: u64,
        victim_lag_ms: u64,
        downtime_ms: u64,
    ) -> &mut Self {
        self.push(at_ms, FaultAction::Swap { host: coordinator, target: target.to_string() });
        self.push(at_ms + victim_lag_ms, FaultAction::Crash { host: victim });
        self.push(at_ms + victim_lag_ms + downtime_ms, FaultAction::Restart { host: victim });
        self
    }

    /// The actions in firing order: stable-sorted by `at_ms`, listed order
    /// preserved within a tie.
    #[must_use]
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at_ms);
        events
    }

    /// The last scheduled instant, in milliseconds.
    #[must_use]
    pub fn horizon_ms(&self) -> u64 {
        self.events.iter().map(|e| e.at_ms).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_emits_alternating_partition_heal_pairs() {
        let mut s = FaultSchedule::new();
        s.flap(0, 1, 100, 3, 50, 25);
        assert_eq!(s.events.len(), 6);
        assert_eq!(
            s.events[0],
            FaultEvent { at_ms: 100, action: FaultAction::Partition { a: 0, b: 1 } }
        );
        assert_eq!(
            s.events[1],
            FaultEvent { at_ms: 150, action: FaultAction::Heal { a: 0, b: 1 } }
        );
        assert_eq!(s.events[5].at_ms, 300);
        assert_eq!(s.horizon_ms(), 300);
    }

    #[test]
    fn sorted_is_stable_within_a_tie() {
        let mut s = FaultSchedule::new();
        s.push(50, FaultAction::Crash { host: 2 });
        s.push(10, FaultAction::Hold { host: 1, value: true });
        s.push(50, FaultAction::Restart { host: 2 });
        let sorted = s.sorted();
        assert_eq!(sorted[0].at_ms, 10);
        assert_eq!(sorted[1], FaultEvent { at_ms: 50, action: FaultAction::Crash { host: 2 } });
        assert_eq!(sorted[2], FaultEvent { at_ms: 50, action: FaultAction::Restart { host: 2 } });
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let mut s = FaultSchedule::new();
        s.push(5, FaultAction::Partition { a: 0, b: 3 });
        s.push(9, FaultAction::SkewClock { host: 2, skew_us: -1500 });
        s.push(12, FaultAction::Swap { host: 0, target: "J_T_T".to_string() });
        s.push(20, FaultAction::Hold { host: 3, value: true });
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
