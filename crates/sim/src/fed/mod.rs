//! Deterministic federated cluster simulation.
//!
//! The single-host simulator ([`crate::simulation`]) reproduces the
//! paper's §7 experiments on one virtual host. This module federates it:
//! **M simulated hosts**, each with its own admission controller, service
//! configuration, per-host *virtual clock* (injectable skew and drift) and
//! quorum role, advanced by **one** global discrete-event loop. Bridge
//! links between hosts carry the threaded runtime's own reconfiguration
//! wire messages ([`rtcm_rt::proto`]) with latency, jitter, loss, reorder
//! and partition schedules — so the two-phase swap protocol runs over an
//! adversarial network whose every misfortune is a seeded draw.
//!
//! The protocol logic is **not** re-implemented: hosts drive the identical
//! [`rtcm_rt::quorum_sm::MemberSm`] / [`rtcm_rt::quorum_sm::CoordinatorSm`]
//! state machines the threaded runtime uses, with time injected from the
//! per-host virtual clocks. What the threaded harness can only probe with
//! real processes, real TCP and real milliseconds, this module sweeps
//! across hundreds of seeds per second — a thousand-host failure campaign
//! is just a bigger seed range.
//!
//! * [`clock`] — per-host virtual clocks: `local = anchor + (1 + drift) ·
//!   Δglobal`, with mid-run skew steps and drift-rate changes;
//! * [`link`] — per-direction bridge links (latency/jitter/loss/reorder,
//!   up/down state);
//! * [`fault`] — the serde-backed [`fault::FaultSchedule`]: the *same*
//!   schedule format drives this simulator and the multi-process harness
//!   orchestrator (`rtcm-harness`);
//! * [`federation`] — the M-host event loop itself;
//! * [`campaign`] — seeded campaign runner: executes a fault schedule,
//!   checks the protocol invariants (no partial swap, abort-reason
//!   accounting, loss-freedom) and emits a byte-for-byte reproducible
//!   event trace.

pub mod campaign;
pub mod clock;
pub mod fault;
pub mod federation;
pub mod link;
