//! Per-host virtual clocks with injectable skew and drift.
//!
//! The federation advances one *global* timeline (perfect, invisible to
//! the hosts); each host reads time through its own [`VirtualClock`]:
//!
//! ```text
//! local(g) = anchor_local + (g - anchor_global) · (1 + ppm/10⁶)
//! ```
//!
//! Skew injection steps `anchor_local` (a one-shot clock jump, like an
//! operator `date -s` or a cold NTP correction); drift injection changes
//! the rate, re-anchoring at the current instant so the local timeline
//! stays continuous. All arithmetic is integer (`i128` intermediates), so
//! two runs of the same campaign read byte-identical timestamps.
//!
//! The protocol state machines ([`rtcm_rt::quorum_sm`]) take time as
//! plain `now_ns` arguments; the federation feeds them `local_ns(now)`
//! readings, which is exactly how clock error reaches fence and ack
//! timers — a host whose clock runs 0.1% fast expires its fences 0.1%
//! early, just as the threaded runtime would on a machine with a bad
//! oscillator.

/// One host's view of time, as a piecewise-linear map from the global
/// timeline to the host's local nanosecond counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    /// Global instant of the current anchor.
    anchor_global: u64,
    /// Local reading at the anchor instant.
    anchor_local: u64,
    /// Rate error in parts-per-million: local runs `1 + ppm/10⁶` as fast
    /// as global. Negative is a slow clock.
    ppm: i64,
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::perfect()
    }
}

impl VirtualClock {
    /// A clock that tracks the global timeline exactly.
    #[must_use]
    pub fn perfect() -> Self {
        VirtualClock { anchor_global: 0, anchor_local: 0, ppm: 0 }
    }

    /// The local reading at global instant `global_ns`.
    #[must_use]
    pub fn local_ns(&self, global_ns: u64) -> u64 {
        let delta = i128::from(global_ns.saturating_sub(self.anchor_global));
        let scaled = delta + delta * i128::from(self.ppm) / 1_000_000;
        let local = i128::from(self.anchor_local) + scaled;
        local.clamp(0, i128::from(u64::MAX)) as u64
    }

    /// The global instant at which this clock will read `local_ns`, under
    /// the *current* rate (a later drift change invalidates the answer —
    /// callers that schedule timers off this must re-check on fire).
    /// Returns `None` if the local instant is already in the past at
    /// `from_global_ns`.
    #[must_use]
    pub fn global_for_local(&self, local_ns: u64, from_global_ns: u64) -> Option<u64> {
        if local_ns <= self.local_ns(from_global_ns) {
            return None;
        }
        let delta_local = i128::from(local_ns) - i128::from(self.anchor_local);
        // Invert local = anchor_local + Δg·(1e6 + ppm)/1e6, rounding up so
        // the returned global instant is never *before* the local deadline.
        let rate = i128::from(1_000_000_i64 + self.ppm).max(1);
        let delta_global = (delta_local * 1_000_000 + rate - 1) / rate;
        let global = i128::from(self.anchor_global) + delta_global;
        Some(global.clamp(0, i128::from(u64::MAX)) as u64)
    }

    /// Steps the local clock by `skew_ns` at global instant `at_global_ns`
    /// (saturating at zero — a local clock never reads negative).
    pub fn step(&mut self, at_global_ns: u64, skew_ns: i64) {
        let local = self.local_ns(at_global_ns);
        self.anchor_global = at_global_ns;
        self.anchor_local = local.saturating_add_signed(skew_ns);
    }

    /// Changes the drift rate to `ppm` at global instant `at_global_ns`,
    /// re-anchoring so the local timeline is continuous at the change.
    pub fn set_drift(&mut self, at_global_ns: u64, ppm: i64) {
        let local = self.local_ns(at_global_ns);
        self.anchor_global = at_global_ns;
        self.anchor_local = local;
        self.ppm = ppm;
    }

    /// The current rate error in parts-per-million.
    #[must_use]
    pub fn drift_ppm(&self) -> i64 {
        self.ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = VirtualClock::perfect();
        assert_eq!(c.local_ns(0), 0);
        assert_eq!(c.local_ns(1_000_000_007), 1_000_000_007);
        assert_eq!(c.global_for_local(500, 0), Some(500));
    }

    #[test]
    fn skew_steps_the_local_reading() {
        let mut c = VirtualClock::perfect();
        c.step(1_000, 250);
        assert_eq!(c.local_ns(1_000), 1_250);
        assert_eq!(c.local_ns(2_000), 2_250);
        c.step(2_000, -2_000);
        assert_eq!(c.local_ns(2_000), 250);
        // Negative skew saturates at zero, never a negative reading.
        c.step(2_000, -10_000);
        assert_eq!(c.local_ns(2_000), 0);
    }

    #[test]
    fn drift_scales_elapsed_time_and_stays_continuous() {
        let mut c = VirtualClock::perfect();
        c.set_drift(1_000_000, 100_000); // +10% fast
        assert_eq!(c.local_ns(1_000_000), 1_000_000);
        assert_eq!(c.local_ns(2_000_000), 2_100_000);
        // Rate change re-anchors: no jump at the change instant.
        c.set_drift(2_000_000, -100_000);
        assert_eq!(c.local_ns(2_000_000), 2_100_000);
        assert_eq!(c.local_ns(3_000_000), 3_000_000);
    }

    #[test]
    fn inverse_mapping_lands_at_or_after_the_local_deadline() {
        let mut c = VirtualClock::perfect();
        c.set_drift(0, 333); // odd rate to force rounding
        for local in [1_u64, 999, 1_000_000, 123_456_789] {
            let g = c.global_for_local(local, 0).unwrap();
            assert!(c.local_ns(g) >= local, "local deadline {local} missed at global {g}");
            assert!(c.local_ns(g.saturating_sub(2)) < local);
        }
        // Past deadlines are reported as such rather than inverted.
        assert_eq!(c.global_for_local(5, 1_000_000), None);
    }
}
