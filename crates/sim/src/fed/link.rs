//! Simulated bridge links between federation hosts.
//!
//! Each **ordered** pair of hosts has its own [`Link`] — the two
//! directions of a bridge fail and delay independently, exactly like the
//! two TCP half-connections of the threaded runtime's gateway pair. A
//! link is a latency/jitter base, a loss probability, a reorder
//! probability and an up/down switch (partitions flip both directions;
//! asymmetric partitions flip one).
//!
//! Delivery is a seeded draw: the federation's single RNG decides loss,
//! jitter and reordering in event order, so the same seed produces the
//! same network weather byte-for-byte.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Delay/loss parameters of one link direction. Integer units (µs and
/// permille) keep the struct exactly serializable and the draws integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way latency in microseconds.
    pub latency_us: u64,
    /// Uniform extra jitter in `[0, jitter_us]` microseconds.
    pub jitter_us: u64,
    /// Probability of dropping a message, in permille (0..=1000).
    pub loss_permille: u32,
    /// Probability of delaying a message by an extra `3 × jitter` (enough
    /// to overtake later sends), in permille.
    pub reorder_permille: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // A LAN-ish bridge: 200 µs ± 100 µs, lossless.
        LinkConfig { latency_us: 200, jitter_us: 100, loss_permille: 0, reorder_permille: 0 }
    }
}

/// One direction of a bridge between two hosts.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Delay/loss parameters.
    pub config: LinkConfig,
    /// False while partitioned: every send is dropped.
    pub up: bool,
    /// Messages handed to the link.
    pub sent: u64,
    /// Messages dropped (partition or loss draw).
    pub dropped: u64,
}

impl Link {
    /// A healthy link with the given parameters.
    #[must_use]
    pub fn new(config: LinkConfig) -> Self {
        Link { config, up: true, sent: 0, dropped: 0 }
    }

    /// Draws one delivery: `Some(delay_ns)` to deliver after that one-way
    /// delay, `None` to drop. The draw consumes RNG state even when the
    /// link is down, so healing a partition never shifts the remaining
    /// random sequence between seeds of the same campaign.
    pub fn delivery_delay(&mut self, rng: &mut StdRng) -> Option<u64> {
        self.sent += 1;
        let loss_draw: u32 = rng.gen_range(0..1000);
        let jitter_us =
            if self.config.jitter_us == 0 { 0 } else { rng.gen_range(0..=self.config.jitter_us) };
        let reorder_draw: u32 = rng.gen_range(0..1000);
        if !self.up || loss_draw < self.config.loss_permille {
            self.dropped += 1;
            return None;
        }
        let mut delay_us = self.config.latency_us + jitter_us;
        if reorder_draw < self.config.reorder_permille {
            delay_us += 3 * self.config.jitter_us.max(1);
        }
        Some(delay_us.saturating_mul(1_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn delay_stays_in_the_configured_band() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = LinkConfig { latency_us: 200, jitter_us: 100, ..LinkConfig::default() };
        let mut link = Link::new(cfg);
        for _ in 0..200 {
            let d = link.delivery_delay(&mut rng).expect("lossless link delivers");
            assert!((200_000..=300_000).contains(&d), "delay {d} out of band");
        }
        assert_eq!(link.sent, 200);
        assert_eq!(link.dropped, 0);
    }

    #[test]
    fn partition_drops_but_keeps_consuming_the_rng() {
        let cfg = LinkConfig::default();
        // Two parallel runs, one with a mid-stream partition: draws after
        // the heal must be identical to the unpartitioned run's.
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut link_a = Link::new(cfg);
        let mut link_b = Link::new(cfg);
        let first_a: Vec<_> = (0..5).map(|_| link_a.delivery_delay(&mut rng_a)).collect();
        link_b.up = false;
        let first_b: Vec<_> = (0..5).map(|_| link_b.delivery_delay(&mut rng_b)).collect();
        assert!(first_a.iter().all(Option::is_some));
        assert!(first_b.iter().all(Option::is_none));
        assert_eq!(link_b.dropped, 5);
        link_b.up = true;
        for _ in 0..50 {
            assert_eq!(link_a.delivery_delay(&mut rng_a), link_b.delivery_delay(&mut rng_b));
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut link = Link::new(LinkConfig { loss_permille: 1000, ..LinkConfig::default() });
        assert!((0..20).all(|_| link.delivery_delay(&mut rng).is_none()));
    }
}
