//! The federated event loop: M simulated hosts, one global timeline.
//!
//! Every host runs the real middleware control plane — an
//! [`AdmissionController`] for its own workload, and the *identical*
//! quorum state machines the threaded runtime uses
//! ([`MemberSm`]/[`CoordinatorSm`] from `rtcm-rt`) for two-phase
//! reconfiguration — while the federation advances one discrete-event
//! heap. Between hosts sit simulated bridge [`Link`]s; above them a
//! [`FaultSchedule`] injects partitions, crashes, clock skew and swap
//! requests at scripted instants.
//!
//! ## Time
//!
//! The heap orders events on the hidden **global** timeline. Hosts never
//! see it: admission deadlines, fence expiries and ack timeouts all read
//! the host's [`VirtualClock`], so injected skew and drift reach the
//! protocol exactly where they would on real machines — through the
//! timers. Job *execution* is physics, not perception: subjob durations
//! occupy global time regardless of what the executing host's clock
//! claims.
//!
//! ## The swap protocol
//!
//! A coordinating host publishes `Prepare` to every peer, collects votes
//! through a [`CoordinatorSm`] (every peer is a required voter — a
//! crashed or partitioned peer's silence aborts the swap at the ack
//! deadline, never half-applies it), then publishes `Commit` or `Abort`.
//! Peers run [`MemberSm`]: fence on prepare, ack or veto, apply the
//! configuration on a witnessed commit, drop stale fences after the
//! fence timeout on their own (possibly skewed) clocks. Arrivals at a
//! coordinating host are deferred until its swap resolves, mirroring the
//! threaded manager whose prepare loop queues its mailbox.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtcm_core::admission::{AdmissionController, Decision};
use rtcm_core::strategy::{InvalidConfigError, ServiceConfig};
use rtcm_core::task::TaskSet;
use rtcm_core::time::Time;
use rtcm_rt::proto::{swap_trace, ReconfigAbortReason, ReconfigAckMsg, ReconfigMsg, ReconfigPhase};
use rtcm_rt::quorum_sm::{CoordinatorSm, MemberReaction, MemberSm, QuorumStatus};
use rtcm_workload::ArrivalTrace;

use super::clock::VirtualClock;
use super::fault::{FaultAction, FaultEvent, FaultSchedule};
use super::link::{Link, LinkConfig};

/// Federation-wide tunables.
#[derive(Debug, Clone)]
pub struct FedOptions {
    /// Coordinator ack deadline (on the coordinator's clock).
    pub ack_timeout_ms: u64,
    /// Member fence timeout (on each member's clock).
    pub fence_timeout_ms: u64,
    /// Parameters applied to every link direction.
    pub link: LinkConfig,
    /// Seed for all network weather draws.
    pub seed: u64,
    /// When set, the run ends with a *convergence epilogue*: all faults
    /// healed, then a final swap to this configuration is retried until
    /// it commits everywhere — the campaign's terminal-convergence check.
    pub converge_target: Option<ServiceConfig>,
}

impl Default for FedOptions {
    fn default() -> Self {
        FedOptions {
            ack_timeout_ms: 25,
            fence_timeout_ms: 60,
            link: LinkConfig::default(),
            seed: 0,
            converge_target: None,
        }
    }
}

/// One host's static inputs.
#[derive(Debug, Clone)]
pub struct FedHostSpec {
    /// Initial service configuration.
    pub services: ServiceConfig,
    /// The host's task set.
    pub tasks: TaskSet,
    /// The host's job arrivals (global-timeline instants: arrivals are
    /// physical stimuli, not clock readings).
    pub arrivals: ArrivalTrace,
}

/// Federation construction/run errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedError {
    /// A host's initial or restart configuration was invalid.
    Invalid(InvalidConfigError),
    /// A fault event referenced an unknown host index.
    UnknownHost(u16),
    /// A `Swap` action's target label failed to parse.
    BadTarget(String),
    /// An admission call failed structurally (bad task/processor wiring).
    Admission(String),
    /// The event loop exceeded its runaway-safety cap.
    RunawayEvents(u64),
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedError::Invalid(e) => write!(f, "invalid configuration: {e}"),
            FedError::UnknownHost(h) => write!(f, "fault references unknown host {h}"),
            FedError::BadTarget(t) => write!(f, "unparseable swap target {t:?}"),
            FedError::Admission(e) => write!(f, "admission wiring error: {e}"),
            FedError::RunawayEvents(n) => write!(f, "event loop exceeded {n} events"),
        }
    }
}

impl std::error::Error for FedError {}

impl From<InvalidConfigError> for FedError {
    fn from(e: InvalidConfigError) -> Self {
        FedError::Invalid(e)
    }
}

/// How one initiated swap epoch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochOutcome {
    /// Quorum satisfied; the coordinator committed.
    Committed,
    /// The coordinator aborted with this reason.
    Aborted(ReconfigAbortReason),
    /// The coordinating host crashed before resolving the epoch; member
    /// fences expire on their own clocks.
    CoordinatorCrashed,
}

/// The oracle record of one initiated swap.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Coordinating host index.
    pub host: u16,
    /// Coordinator identity on the wire.
    pub coordinator: u64,
    /// The epoch number (monotone per host).
    pub epoch: u64,
    /// Target configuration label.
    pub target: String,
    /// Resolution; `None` only while the run is in progress.
    pub outcome: Option<EpochOutcome>,
}

/// One host's end-of-run accounting.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Host index.
    pub host: u16,
    /// Jobs admitted (including deferred replays).
    pub admitted: u64,
    /// Admitted jobs that ran to completion.
    pub completed: u64,
    /// Arrivals rejected by admission control.
    pub rejected: u64,
    /// Admitted jobs destroyed by a crash of this host.
    pub lost_on_crash: u64,
    /// Admitted jobs still executing when the run ended.
    pub in_flight_at_end: u64,
    /// Arrivals skipped because the host was down.
    pub skipped_down: u64,
    /// Deferred arrivals replayed after a swap resolved.
    pub deferred_replayed: u64,
    /// Deferred arrivals destroyed by a crash before replay.
    pub deferred_dropped: u64,
    /// Times this host crashed.
    pub crashes: u32,
    /// Foreign prepares acked (member role).
    pub acks: u64,
    /// Foreign prepares vetoed (member role).
    pub nacks: u64,
    /// Every configuration this host applied: `(coordinator, epoch,
    /// label)` in application order, own commits included.
    pub applied: Vec<(u64, u64, String)>,
    /// The configuration the host ended on.
    pub final_config: String,
    /// Accumulated execution time per processor, global ns.
    pub busy_ns: Vec<u64>,
}

/// The campaign's full output.
#[derive(Debug, Clone)]
pub struct FedReport {
    /// Per-host accounting.
    pub hosts: Vec<HostReport>,
    /// Every initiated swap epoch, in initiation order.
    pub epochs: Vec<EpochRecord>,
    /// The deterministic event trace (protocol + fault events).
    pub trace: Vec<String>,
    /// Messages handed to links.
    pub msgs_sent: u64,
    /// Messages dropped by partitions or loss draws.
    pub msgs_dropped: u64,
    /// Events processed.
    pub events: u64,
    /// Global instant the run ended.
    pub end_global_ns: u64,
    /// The label every host converged on (epilogue), if all agree.
    pub converged: Option<String>,
}

const EVENT_CAP: u64 = 10_000_000;
const CONVERGE_ATTEMPTS: u32 = 64;

#[derive(Debug, Clone)]
enum NetMsg {
    Phase(ReconfigMsg),
    Ack(ReconfigAckMsg),
}

#[derive(Debug, Clone)]
enum FedEv {
    /// Index into the host's arrival trace.
    Arrival {
        host: usize,
        idx: usize,
    },
    Deliver {
        to: usize,
        msg: NetMsg,
    },
    JobComplete {
        host: usize,
        inc: u32,
    },
    FenceCheck {
        host: usize,
        coordinator: u64,
        epoch: u64,
    },
    AckDeadline {
        host: usize,
        epoch: u64,
    },
    Fault {
        idx: usize,
    },
}

struct Scheduled {
    time: u64,
    seq: u64,
    ev: FedEv,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap on (time, insertion seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct PendingSwap {
    sm: CoordinatorSm,
    epoch: u64,
    target: ServiceConfig,
    /// Ack deadline on the coordinator's clock.
    deadline_local_ns: u64,
    /// Index into [`Federation::epochs`].
    record: usize,
}

struct SimHost {
    wire_id: u64,
    up: bool,
    incarnation: u32,
    clock: VirtualClock,
    services: ServiceConfig,
    ac: AdmissionController,
    tasks: TaskSet,
    arrivals: ArrivalTrace,
    processors: usize,
    member: MemberSm,
    holding: bool,
    pending: Option<PendingSwap>,
    deferred: Vec<usize>,
    epoch_counter: u64,
    proc_free: Vec<u64>,
    proc_busy: Vec<u64>,
    admitted: u64,
    completed: u64,
    rejected: u64,
    lost_on_crash: u64,
    in_flight: u64,
    skipped_down: u64,
    deferred_replayed: u64,
    deferred_dropped: u64,
    crashes: u32,
    applied: Vec<(u64, u64, String)>,
}

impl SimHost {
    fn local_ns(&self, global_ns: u64) -> u64 {
        self.clock.local_ns(global_ns)
    }
}

/// The federated simulator. Build with [`Federation::new`], run one
/// campaign with [`Federation::run`].
pub struct Federation {
    hosts: Vec<SimHost>,
    links: Vec<Link>,
    faults: Vec<FaultEvent>,
    opts: FedOptions,
    rng: StdRng,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: u64,
    events: u64,
    trace: Vec<String>,
    epochs: Vec<EpochRecord>,
}

impl Federation {
    /// Builds a federation of `specs.len()` hosts with a full mesh of
    /// links, scripted by `schedule`.
    ///
    /// # Errors
    ///
    /// Returns [`FedError`] for invalid initial configurations, fault
    /// events referencing unknown hosts, or unparseable swap targets.
    pub fn new(
        specs: Vec<FedHostSpec>,
        schedule: &FaultSchedule,
        opts: FedOptions,
    ) -> Result<Self, FedError> {
        let m = specs.len();
        let faults = schedule.sorted();
        for ev in &faults {
            let check = |h: u16| {
                if usize::from(h) >= m {
                    Err(FedError::UnknownHost(h))
                } else {
                    Ok(())
                }
            };
            match &ev.action {
                FaultAction::Partition { a, b } | FaultAction::Heal { a, b } => {
                    check(*a)?;
                    check(*b)?;
                }
                FaultAction::Crash { host }
                | FaultAction::Restart { host }
                | FaultAction::SkewClock { host, .. }
                | FaultAction::DriftClock { host, .. }
                | FaultAction::Hold { host, .. } => check(*host)?,
                FaultAction::Swap { host, target } => {
                    check(*host)?;
                    target
                        .parse::<ServiceConfig>()
                        .map_err(|_| FedError::BadTarget(target.clone()))?;
                }
            }
        }
        let mut hosts = Vec::with_capacity(m);
        for (i, spec) in specs.into_iter().enumerate() {
            let processors = spec.tasks.processor_count();
            let ac = AdmissionController::new(spec.services, processors)?;
            hosts.push(SimHost {
                wire_id: i as u64,
                up: true,
                incarnation: 0,
                clock: VirtualClock::perfect(),
                services: spec.services,
                ac,
                tasks: spec.tasks,
                arrivals: spec.arrivals,
                processors,
                member: MemberSm::new(),
                holding: false,
                pending: None,
                deferred: Vec::new(),
                epoch_counter: 0,
                proc_free: vec![0; processors],
                proc_busy: vec![0; processors],
                admitted: 0,
                completed: 0,
                rejected: 0,
                lost_on_crash: 0,
                in_flight: 0,
                skipped_down: 0,
                deferred_replayed: 0,
                deferred_dropped: 0,
                crashes: 0,
                applied: Vec::new(),
            });
        }
        let links = vec![Link::new(opts.link); m * m];
        let rng = StdRng::seed_from_u64(opts.seed);
        Ok(Federation {
            hosts,
            links,
            faults,
            opts,
            rng,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            events: 0,
            trace: Vec::new(),
            epochs: Vec::new(),
        })
    }

    fn ack_timeout_ns(&self) -> u64 {
        self.opts.ack_timeout_ms * 1_000_000
    }

    fn fence_timeout_ns(&self) -> u64 {
        self.opts.fence_timeout_ms * 1_000_000
    }

    fn schedule(&mut self, time: u64, ev: FedEv) {
        self.seq += 1;
        self.heap.push(Scheduled { time: time.max(self.now), seq: self.seq, ev });
    }

    fn note(&mut self, line: String) {
        self.trace.push(line);
    }

    /// Sends `msg` from host `from` to host `to` over the directed link,
    /// drawing delay/loss from the federation RNG.
    fn send(&mut self, from: usize, to: usize, msg: NetMsg) {
        let m = self.hosts.len();
        let link = &mut self.links[from * m + to];
        if let Some(delay_ns) = link.delivery_delay(&mut self.rng) {
            let at = self.now + delay_ns;
            self.schedule(at, FedEv::Deliver { to, msg });
        }
    }

    /// Broadcasts a protocol phase from `from` to every other host, in
    /// index order (determinism).
    fn broadcast(&mut self, from: usize, msg: &ReconfigMsg) {
        for to in 0..self.hosts.len() {
            if to != from {
                self.send(from, to, NetMsg::Phase(*msg));
            }
        }
    }

    /// Runs the campaign to quiescence (plus the convergence epilogue if
    /// configured) and returns the full report.
    ///
    /// # Errors
    ///
    /// Returns [`FedError`] on admission wiring failures or a runaway
    /// event loop.
    pub fn run(mut self) -> Result<FedReport, FedError> {
        // Seed the heap: every host's arrivals, plus the fault script.
        for h in 0..self.hosts.len() {
            for idx in 0..self.hosts[h].arrivals.len() {
                let at = self.hosts[h].arrivals.arrivals()[idx].time.as_nanos();
                self.schedule(at, FedEv::Arrival { host: h, idx });
            }
        }
        for idx in 0..self.faults.len() {
            let at = self.faults[idx].at_ms * 1_000_000;
            self.schedule(at, FedEv::Fault { idx });
        }
        self.drain()?;

        // Convergence epilogue: heal the world, let fences lapse, then
        // drive one final swap until every host applies it.
        let converged = if let Some(target) = self.opts.converge_target {
            self.heal_all();
            let label = target.label();
            let mut committed_everywhere = false;
            for _attempt in 0..CONVERGE_ATTEMPTS {
                self.now += self.fence_timeout_ns() + 1_000_000;
                self.expire_all_fences();
                self.initiate_swap(0, target)?;
                self.drain()?;
                committed_everywhere = self.hosts.iter().all(|h| h.services.label() == label);
                if committed_everywhere {
                    break;
                }
            }
            let line =
                format!("t={} converge target={} ok={}", self.now, label, committed_everywhere);
            self.note(line);
            committed_everywhere.then_some(label)
        } else {
            None
        };

        let (msgs_sent, msgs_dropped) =
            self.links.iter().fold((0, 0), |(s, d), l| (s + l.sent, d + l.dropped));
        let hosts = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| HostReport {
                host: i as u16,
                admitted: h.admitted,
                completed: h.completed,
                rejected: h.rejected,
                lost_on_crash: h.lost_on_crash,
                in_flight_at_end: h.in_flight,
                skipped_down: h.skipped_down,
                deferred_replayed: h.deferred_replayed,
                deferred_dropped: h.deferred_dropped,
                crashes: h.crashes,
                acks: h.member.acks(),
                nacks: h.member.nacks(),
                applied: h.applied.clone(),
                final_config: h.services.label(),
                busy_ns: h.proc_busy.clone(),
            })
            .collect();
        Ok(FedReport {
            hosts,
            epochs: self.epochs,
            trace: self.trace,
            msgs_sent,
            msgs_dropped,
            events: self.events,
            end_global_ns: self.now,
            converged,
        })
    }

    fn drain(&mut self) -> Result<(), FedError> {
        while let Some(s) = self.heap.pop() {
            self.events += 1;
            if self.events > EVENT_CAP {
                return Err(FedError::RunawayEvents(EVENT_CAP));
            }
            self.now = self.now.max(s.time);
            self.process(s.ev)?;
        }
        Ok(())
    }

    fn process(&mut self, ev: FedEv) -> Result<(), FedError> {
        match ev {
            FedEv::Arrival { host, idx } => self.on_arrival(host, idx),
            FedEv::Deliver { to, msg } => self.on_deliver(to, msg),
            FedEv::JobComplete { host, inc } => {
                let h = &mut self.hosts[host];
                if h.up && h.incarnation == inc {
                    h.completed += 1;
                    h.in_flight -= 1;
                }
                Ok(())
            }
            FedEv::FenceCheck { host, coordinator, epoch } => {
                self.on_fence_check(host, coordinator, epoch);
                Ok(())
            }
            FedEv::AckDeadline { host, epoch } => self.on_ack_deadline(host, epoch),
            FedEv::Fault { idx } => self.on_fault(idx),
        }
    }

    fn on_arrival(&mut self, host: usize, idx: usize) -> Result<(), FedError> {
        if !self.hosts[host].up {
            self.hosts[host].skipped_down += 1;
            return Ok(());
        }
        if self.hosts[host].pending.is_some() {
            // The coordinator's manager thread is inside its prepare loop:
            // arrivals queue in the mailbox and run after resolution.
            self.hosts[host].deferred.push(idx);
            return Ok(());
        }
        self.admit(host, idx)
    }

    /// Runs one arrival through the host's admission controller and, on
    /// acceptance, schedules its chain execution over the host's
    /// processors in global time.
    fn admit(&mut self, host: usize, idx: usize) -> Result<(), FedError> {
        let now = self.now;
        let h = &mut self.hosts[host];
        let arrival = h.arrivals.arrivals()[idx];
        let Some(task) = h.tasks.get(arrival.task) else {
            return Err(FedError::Admission(format!("unknown task {:?}", arrival.task)));
        };
        let local_now = Time::from_nanos(h.local_ns(now));
        let decision =
            h.ac.handle_arrival(task, arrival.seq, local_now)
                .map_err(|e| FedError::Admission(e.to_string()))?;
        match decision {
            Decision::Accept { assignment, .. } => {
                h.admitted += 1;
                h.in_flight += 1;
                let mut cursor = now;
                for (sub, proc) in assignment.iter() {
                    let exec = task.subtasks()[sub].execution_time.as_nanos();
                    let start = cursor.max(h.proc_free[proc.index()]);
                    let end = start + exec;
                    h.proc_free[proc.index()] = end;
                    h.proc_busy[proc.index()] += exec;
                    cursor = end;
                }
                let inc = h.incarnation;
                self.schedule(cursor, FedEv::JobComplete { host, inc });
            }
            Decision::Reject { .. } => {
                h.rejected += 1;
            }
        }
        Ok(())
    }

    fn on_deliver(&mut self, to: usize, msg: NetMsg) -> Result<(), FedError> {
        if !self.hosts[to].up {
            return Ok(());
        }
        match msg {
            NetMsg::Phase(msg) => self.on_phase(to, &msg),
            NetMsg::Ack(ack) => self.on_ack(to, &ack),
        }
    }

    /// A protocol phase reaches member `to`: drive the shared [`MemberSm`]
    /// with the member's *local* clock reading and carry out its reaction.
    fn on_phase(&mut self, to: usize, msg: &ReconfigMsg) -> Result<(), FedError> {
        let now = self.now;
        let fence_timeout_ns = self.fence_timeout_ns();
        let h = &mut self.hosts[to];
        let local = h.local_ns(now);
        let wire_id = h.wire_id;
        let holding = h.holding;
        let reaction = h.member.on_phase(msg, wire_id, local, fence_timeout_ns, holding);
        match reaction {
            MemberReaction::Ignored => Ok(()),
            MemberReaction::Vote(ack) => {
                let voted = match ack.vote {
                    rtcm_rt::proto::ReconfigVote::Ack => "ack",
                    rtcm_rt::proto::ReconfigVote::Nack(_) => "nack",
                };
                let fence = h.member.fence();
                self.note(format!(
                    "t={now} local={local} h{to} prepare c={} e={} target={} vote={voted}",
                    msg.coordinator,
                    msg.epoch,
                    msg.services.label(),
                ));
                // Mirror the standing fence with an expiry check on the
                // member's own clock.
                if let Some(f) = fence {
                    let deadline_local = f.raised_ns + fence_timeout_ns;
                    let at = self.hosts[to]
                        .clock
                        .global_for_local(deadline_local, now)
                        .unwrap_or(now + 1);
                    self.schedule(
                        at,
                        FedEv::FenceCheck { host: to, coordinator: f.coordinator, epoch: f.epoch },
                    );
                }
                self.send(to, msg.host as usize, NetMsg::Ack(ack));
                Ok(())
            }
            MemberReaction::Committed(services) => {
                self.note(format!(
                    "t={now} local={local} h{to} commit c={} e={} applied={}",
                    msg.coordinator,
                    msg.epoch,
                    services.label(),
                ));
                self.apply_config(to, msg.coordinator, msg.epoch, services)
            }
            MemberReaction::Aborted => {
                self.note(format!(
                    "t={now} local={local} h{to} abort c={} e={} witnessed",
                    msg.coordinator, msg.epoch,
                ));
                Ok(())
            }
        }
    }

    /// Applies a committed configuration on host `idx` at its local time.
    fn apply_config(
        &mut self,
        idx: usize,
        coordinator: u64,
        epoch: u64,
        services: ServiceConfig,
    ) -> Result<(), FedError> {
        let now = self.now;
        let h = &mut self.hosts[idx];
        let local_now = Time::from_nanos(h.local_ns(now));
        h.ac.reconfigure(services, local_now, &h.tasks).map_err(FedError::Invalid)?;
        h.services = services;
        h.applied.push((coordinator, epoch, services.label()));
        Ok(())
    }

    /// A vote reaches coordinator `to`: feed the pending [`CoordinatorSm`]
    /// and resolve the swap if the quorum settled.
    fn on_ack(&mut self, to: usize, ack: &ReconfigAckMsg) -> Result<(), FedError> {
        let Some(pending) = self.hosts[to].pending.as_mut() else {
            return Ok(());
        };
        pending.sm.on_ack(ack);
        match pending.sm.status() {
            QuorumStatus::Pending => Ok(()),
            QuorumStatus::Satisfied => self.resolve_swap(to, None),
            QuorumStatus::Vetoed(reason) => self.resolve_swap(to, Some(reason)),
        }
    }

    /// The coordinator's ack deadline fires (on its clock).
    fn on_ack_deadline(&mut self, host: usize, epoch: u64) -> Result<(), FedError> {
        let now = self.now;
        let (deadline_local, local) = {
            let h = &self.hosts[host];
            match &h.pending {
                Some(p) if p.epoch == epoch => (p.deadline_local_ns, h.local_ns(now)),
                _ => return Ok(()),
            }
        };
        if local < deadline_local {
            // A drift change moved the local deadline; re-aim.
            let at =
                self.hosts[host].clock.global_for_local(deadline_local, now).unwrap_or(now + 1);
            self.schedule(at, FedEv::AckDeadline { host, epoch });
            return Ok(());
        }
        self.resolve_swap(host, Some(ReconfigAbortReason::AckTimeout))
    }

    /// Commits (`abort == None`) or aborts the pending swap on `host`,
    /// publishes the closing phase, and replays deferred arrivals.
    fn resolve_swap(
        &mut self,
        host: usize,
        abort: Option<ReconfigAbortReason>,
    ) -> Result<(), FedError> {
        let now = self.now;
        let Some(pending) = self.hosts[host].pending.take() else {
            return Ok(());
        };
        let h = &self.hosts[host];
        let local = h.local_ns(now);
        let wire_id = h.wire_id;
        let old = h.services;
        let coordinator = coordinator_id(host);
        let (phase, services, outcome) = match abort {
            None => (ReconfigPhase::Commit, pending.target, EpochOutcome::Committed),
            Some(reason) => (ReconfigPhase::Abort, old, EpochOutcome::Aborted(reason)),
        };
        self.epochs[pending.record].outcome = Some(outcome);
        let msg = ReconfigMsg {
            coordinator,
            host: wire_id,
            epoch: pending.epoch,
            phase,
            services,
            sent_ns: local,
            trace: swap_trace(coordinator, pending.epoch),
        };
        match abort {
            None => self.note(format!(
                "t={now} local={local} h{host} swap e={} committed {}",
                pending.epoch,
                pending.target.label(),
            )),
            Some(reason) => self.note(format!(
                "t={now} local={local} h{host} swap e={} aborted {reason}",
                pending.epoch,
            )),
        }
        self.broadcast(host, &msg);
        if abort.is_none() {
            self.apply_config(host, coordinator, pending.epoch, pending.target)?;
        }
        // The manager leaves its prepare loop: queued arrivals run now.
        let deferred = std::mem::take(&mut self.hosts[host].deferred);
        self.hosts[host].deferred_replayed += deferred.len() as u64;
        for idx in deferred {
            self.admit(host, idx)?;
        }
        Ok(())
    }

    /// A member's fence-expiry check fires (on its clock).
    fn on_fence_check(&mut self, host: usize, coordinator: u64, epoch: u64) {
        let now = self.now;
        let fence_timeout_ns = self.fence_timeout_ns();
        let h = &mut self.hosts[host];
        let Some(f) = h.member.fence() else { return };
        if (f.coordinator, f.epoch) != (coordinator, epoch) {
            return;
        }
        let local = h.local_ns(now);
        if h.member.expire_fence(local, fence_timeout_ns) {
            self.note(format!(
                "t={now} local={local} h{host} fence expired c={coordinator} e={epoch}"
            ));
        } else {
            // Not yet due on the (possibly re-skewed) local clock; re-aim.
            let deadline_local = f.raised_ns + fence_timeout_ns;
            let at =
                self.hosts[host].clock.global_for_local(deadline_local, now).unwrap_or(now + 1);
            self.schedule(at, FedEv::FenceCheck { host, coordinator, epoch });
        }
    }

    fn on_fault(&mut self, idx: usize) -> Result<(), FedError> {
        let now = self.now;
        let action = self.faults[idx].action.clone();
        match action {
            FaultAction::Partition { a, b } => {
                self.set_link(a.into(), b.into(), false);
                self.note(format!("t={now} fault partition h{a}<->h{b}"));
            }
            FaultAction::Heal { a, b } => {
                self.set_link(a.into(), b.into(), true);
                self.note(format!("t={now} fault heal h{a}<->h{b}"));
            }
            FaultAction::Crash { host } => self.crash(host.into()),
            FaultAction::Restart { host } => self.restart(host.into())?,
            FaultAction::SkewClock { host, skew_us } => {
                let h = &mut self.hosts[usize::from(host)];
                h.clock.step(now, skew_us.saturating_mul(1_000));
                let local = h.local_ns(now);
                self.note(format!("t={now} fault skew h{host} {skew_us}us local={local}"));
                self.reaim_timers(host.into());
            }
            FaultAction::DriftClock { host, ppm } => {
                let h = &mut self.hosts[usize::from(host)];
                h.clock.set_drift(now, ppm);
                self.note(format!("t={now} fault drift h{host} {ppm}ppm"));
                self.reaim_timers(host.into());
            }
            FaultAction::Swap { host, target } => {
                let target: ServiceConfig =
                    target.parse().expect("targets validated at construction");
                let h = usize::from(host);
                if !self.hosts[h].up {
                    self.note(format!("t={now} fault swap h{host} ignored: down"));
                } else if self.hosts[h].pending.is_some() {
                    self.note(format!("t={now} fault swap h{host} ignored: in flight"));
                } else {
                    self.initiate_swap(h, target)?;
                }
            }
            FaultAction::Hold { host, value } => {
                self.hosts[usize::from(host)].holding = value;
                self.note(format!("t={now} fault hold h{host} {value}"));
            }
        }
        Ok(())
    }

    /// Starts a two-phase swap with `host` as coordinator.
    fn initiate_swap(&mut self, host: usize, target: ServiceConfig) -> Result<(), FedError> {
        let now = self.now;
        let ack_timeout_ns = self.ack_timeout_ns();
        let m = self.hosts.len();
        let record = self.epochs.len();
        let coordinator = coordinator_id(host);
        let h = &mut self.hosts[host];
        h.epoch_counter += 1;
        let epoch = h.epoch_counter;
        let local = h.local_ns(now);
        let wire_id = h.wire_id;
        // Every peer is a required voter — crashed or partitioned peers
        // abort the swap by silence, exactly like the threaded runtime's
        // registered remote voters.
        let remote: HashSet<u64> = (0..m as u64).filter(|id| *id != wire_id).collect();
        let sm = CoordinatorSm::begin(coordinator, epoch, wire_id, 0, remote);
        let deadline_local_ns = local + ack_timeout_ns;
        h.pending = Some(PendingSwap { sm, epoch, target, deadline_local_ns, record });
        self.epochs.push(EpochRecord {
            host: host as u16,
            coordinator,
            epoch,
            target: target.label(),
            outcome: None,
        });
        self.note(format!(
            "t={now} local={local} h{host} swap e={epoch} prepare target={}",
            target.label()
        ));
        let msg = ReconfigMsg {
            coordinator,
            host: wire_id,
            epoch,
            phase: ReconfigPhase::Prepare,
            services: target,
            sent_ns: local,
            trace: swap_trace(coordinator, epoch),
        };
        self.broadcast(host, &msg);
        let at = self.hosts[host].clock.global_for_local(deadline_local_ns, now).unwrap_or(now + 1);
        self.schedule(at, FedEv::AckDeadline { host, epoch });
        // A one-host federation has an empty quorum: commit immediately.
        if matches!(
            self.hosts[host].pending.as_ref().map(|p| p.sm.status()),
            Some(QuorumStatus::Satisfied)
        ) {
            self.resolve_swap(host, None)?;
        }
        Ok(())
    }

    fn crash(&mut self, host: usize) {
        let now = self.now;
        let h = &mut self.hosts[host];
        if !h.up {
            return;
        }
        h.up = false;
        h.crashes += 1;
        h.lost_on_crash += h.in_flight;
        h.in_flight = 0;
        h.deferred_dropped += h.deferred.len() as u64;
        h.deferred.clear();
        h.member = MemberSm::new();
        h.holding = false;
        for free in &mut h.proc_free {
            *free = now;
        }
        let pending = h.pending.take();
        let dropped_epoch = pending.map(|p| {
            self.epochs[p.record].outcome = Some(EpochOutcome::CoordinatorCrashed);
            p.epoch
        });
        match dropped_epoch {
            Some(e) => self.note(format!("t={now} fault crash h{host} (coordinating e={e})")),
            None => self.note(format!("t={now} fault crash h{host}")),
        }
    }

    fn restart(&mut self, host: usize) -> Result<(), FedError> {
        let now = self.now;
        let h = &mut self.hosts[host];
        if h.up {
            return Ok(());
        }
        h.up = true;
        h.incarnation += 1;
        // Rejoin under the last committed configuration with an empty
        // ledger — the crashed process's admissions are gone.
        h.ac = AdmissionController::new(h.services, h.processors)?;
        self.note(format!("t={now} fault restart h{host}"));
        Ok(())
    }

    fn set_link(&mut self, a: usize, b: usize, up: bool) {
        let m = self.hosts.len();
        self.links[a * m + b].up = up;
        self.links[b * m + a].up = up;
    }

    /// After a skew/drift injection, wake the host's clock-driven timers
    /// so they re-aim at the new local→global mapping.
    fn reaim_timers(&mut self, host: usize) {
        let now = self.now;
        if let Some(f) = self.hosts[host].member.fence() {
            self.schedule(
                now + 1,
                FedEv::FenceCheck { host, coordinator: f.coordinator, epoch: f.epoch },
            );
        }
        if let Some(epoch) = self.hosts[host].pending.as_ref().map(|p| p.epoch) {
            self.schedule(now + 1, FedEv::AckDeadline { host, epoch });
        }
    }

    /// Heals every link, restarts every crashed host, releases holds.
    fn heal_all(&mut self) {
        for link in &mut self.links {
            link.up = true;
            link.config.loss_permille = 0;
            link.config.reorder_permille = 0;
        }
        for i in 0..self.hosts.len() {
            self.hosts[i].holding = false;
            let _ = self.restart(i);
        }
    }

    fn expire_all_fences(&mut self) {
        let now = self.now;
        let fence_timeout_ns = self.fence_timeout_ns();
        for h in &mut self.hosts {
            let local = h.local_ns(now);
            h.member.expire_fence(local, fence_timeout_ns);
        }
    }
}

/// The deterministic coordinator identity of a host's manager.
#[must_use]
pub fn coordinator_id(host: usize) -> u64 {
    ((host as u64) + 1) << 32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_core::time::Duration;
    use rtcm_workload::{ArrivalConfig, RandomWorkload};

    fn small_spec(seed: u64) -> FedHostSpec {
        let tasks =
            RandomWorkload { periodic_tasks: 2, aperiodic_tasks: 2, ..RandomWorkload::default() }
                .generate(seed)
                .unwrap();
        let config = ArrivalConfig { horizon: Duration::from_secs(2), ..ArrivalConfig::default() };
        let arrivals = ArrivalTrace::generate(&tasks, &config, seed);
        FedHostSpec { services: "J_J_J".parse().unwrap(), tasks, arrivals }
    }

    fn quad(schedule: &FaultSchedule, opts: FedOptions) -> FedReport {
        let specs: Vec<_> = (0..4).map(|i| small_spec(100 + i)).collect();
        Federation::new(specs, schedule, opts).unwrap().run().unwrap()
    }

    #[test]
    fn fair_weather_swap_commits_on_every_host() {
        let mut schedule = FaultSchedule::new();
        schedule.push(50, FaultAction::Swap { host: 1, target: "J_T_T".into() });
        let report = quad(&schedule, FedOptions::default());
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].outcome, Some(EpochOutcome::Committed));
        for h in &report.hosts {
            assert_eq!(h.final_config, "J_T_T", "host {} missed the commit", h.host);
            assert_eq!(h.applied.len(), 1);
        }
        // Loss-freedom on a fair-weather run: everything admitted ran.
        for h in &report.hosts {
            assert_eq!(h.admitted, h.completed + h.in_flight_at_end);
            assert_eq!(h.lost_on_crash, 0);
        }
    }

    #[test]
    fn partitioned_voter_aborts_the_swap_by_silence() {
        let mut schedule = FaultSchedule::new();
        schedule.push(10, FaultAction::Partition { a: 0, b: 3 });
        schedule.push(50, FaultAction::Swap { host: 0, target: "J_T_T".into() });
        let report = quad(&schedule, FedOptions::default());
        assert_eq!(
            report.epochs[0].outcome,
            Some(EpochOutcome::Aborted(ReconfigAbortReason::AckTimeout))
        );
        // Nobody applied the aborted target.
        for h in &report.hosts {
            assert_eq!(h.final_config, "J_J_J");
            assert!(h.applied.is_empty());
        }
    }

    #[test]
    fn crashed_coordinator_leaves_members_to_expire_their_fences() {
        let mut schedule = FaultSchedule::new();
        // Crash at the prepare instant itself, before the ~200 µs ack
        // round-trip can satisfy the quorum.
        schedule.crash_during_prepare(2, 2, "T_T_T", 50, 0, 40);
        let report = quad(&schedule, FedOptions::default());
        assert_eq!(report.epochs[0].outcome, Some(EpochOutcome::CoordinatorCrashed));
        for h in &report.hosts {
            assert_eq!(h.final_config, "J_J_J");
        }
        assert!(
            report.trace.iter().any(|l| l.contains("fence expired")),
            "members must self-release: {:#?}",
            report.trace
        );
    }

    #[test]
    fn converge_epilogue_reunifies_a_partitioned_federation() {
        let mut schedule = FaultSchedule::new();
        schedule.push(10, FaultAction::Partition { a: 0, b: 1 });
        schedule.push(20, FaultAction::Crash { host: 3 });
        schedule.push(50, FaultAction::Swap { host: 0, target: "J_T_T".into() });
        let opts =
            FedOptions { converge_target: Some("T_T_T".parse().unwrap()), ..FedOptions::default() };
        let report = quad(&schedule, opts);
        assert_eq!(report.converged.as_deref(), Some("T_T_T"));
        for h in &report.hosts {
            assert_eq!(h.final_config, "T_T_T");
        }
    }

    #[test]
    fn same_seed_reproduces_the_trace_byte_for_byte() {
        let mut schedule = FaultSchedule::new();
        schedule.push(10, FaultAction::Partition { a: 1, b: 2 });
        schedule.push(30, FaultAction::Swap { host: 2, target: "J_T_T".into() });
        schedule.push(40, FaultAction::SkewClock { host: 1, skew_us: 7_000 });
        schedule.push(60, FaultAction::Heal { a: 1, b: 2 });
        schedule.push(90, FaultAction::Swap { host: 0, target: "T_T_T".into() });
        let opts = FedOptions { seed: 42, ..FedOptions::default() };
        let a = quad(&schedule, opts.clone());
        let b = quad(&schedule, opts);
        assert_eq!(a.trace.join("\n"), b.trace.join("\n"));
        assert_eq!(a.events, b.events);
        assert_eq!(a.msgs_sent, b.msgs_sent);
    }

    #[test]
    fn skewed_member_expires_fences_on_its_own_clock() {
        // Host 1's clock jumps far forward right after it fences: its
        // fence (raised pre-skew) is instantly past its local deadline.
        let mut schedule = FaultSchedule::new();
        schedule.push(10, FaultAction::Partition { a: 0, b: 2 });
        schedule.push(10, FaultAction::Partition { a: 0, b: 3 });
        schedule.push(20, FaultAction::Swap { host: 0, target: "J_T_T".into() });
        schedule.push(25, FaultAction::SkewClock { host: 1, skew_us: 500_000 });
        let report = quad(&schedule, FedOptions::default());
        let expired_at = report
            .trace
            .iter()
            .find(|l| l.contains("h1 fence expired"))
            .unwrap_or_else(|| panic!("no early fence expiry in {:#?}", report.trace));
        // The expiry happened just after the skew instant (25 ms), far
        // before the nominal 60 ms fence timeout past the prepare.
        let t: u64 = expired_at
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("t=").and_then(|v| v.parse().ok()))
            .unwrap();
        assert!(t < 40_000_000, "fence expired at {t}ns, not driven by the skewed clock");
    }
}
