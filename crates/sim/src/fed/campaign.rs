//! Seeded failure campaigns over the federated simulator.
//!
//! A [`Campaign`] packages host specs, a [`FaultSchedule`] and
//! [`FedOptions`] into one runnable unit; [`Campaign::run`] executes it
//! and checks the protocol's safety invariants on the resulting
//! [`FedReport`]:
//!
//! 1. **Resolution** — every initiated swap epoch resolves (committed,
//!    aborted with a reason, or coordinator-crashed); nothing hangs.
//! 2. **No partial swap** — a configuration applied on *any* host belongs
//!    to an epoch the coordinator committed, with the exact target label;
//!    aborted and crashed epochs are applied nowhere.
//! 3. **Abort accounting** — every committed epoch is applied at least on
//!    its coordinator; abort reasons are the oracle's, not invented.
//! 4. **Loss-freedom** — per host, `admitted = completed + lost-on-crash
//!    + in-flight-at-end`, and hosts that never crashed lost nothing.
//! 5. **Terminal convergence** — when the campaign has a converge target,
//!    every host ends on it once the faults heal.
//!
//! The scenario builders produce the two standard campaign families:
//! [`Campaign::randomized`] (seeded partitions, crash-during-prepare,
//! clock skew/drift, flapping bridges, competing swaps — the hundreds-of-
//! seeds sweep) and [`Campaign::replica_failover`] (the §7.2 imbalanced
//! workload promoted from `examples/imbalanced_failover.rs`: standby
//! processors idle under `J_T_N`, carrying real load after a mid-run swap
//! to `J_T_T`).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtcm_core::strategy::ServiceConfig;
use rtcm_core::time::Duration;
use rtcm_workload::{ArrivalConfig, ArrivalTrace, ImbalancedWorkload, RandomWorkload};

use super::fault::{FaultAction, FaultSchedule};
use super::federation::{EpochOutcome, FedError, FedHostSpec, FedOptions, FedReport, Federation};

/// One runnable failure campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The simulated hosts.
    pub specs: Vec<FedHostSpec>,
    /// The fault script.
    pub schedule: FaultSchedule,
    /// Federation tunables (including the RNG seed).
    pub opts: FedOptions,
}

/// A campaign's result: the raw report plus any invariant violations.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The federation's full report.
    pub report: FedReport,
    /// Human-readable invariant violations; empty on a clean run.
    pub violations: Vec<String>,
}

impl CampaignOutcome {
    /// True when every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the violation list (and a trace excerpt) if any
    /// invariant failed — the campaign tests' one-line assertion.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "campaign invariants violated:\n  {}\ntrace tail:\n  {}",
            self.violations.join("\n  "),
            self.report.trace.iter().rev().take(20).rev().cloned().collect::<Vec<_>>().join("\n  "),
        );
    }
}

/// Aggregated accounting across a seed sweep, for the experiments table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Campaigns aggregated.
    pub runs: u64,
    /// Swap epochs initiated across all runs.
    pub epochs: u64,
    /// ... of which committed.
    pub committed: u64,
    /// ... aborted by ack timeout (partition/crash/hold silence).
    pub aborted_timeout: u64,
    /// ... aborted by foreign-coordinator veto (swap collisions).
    pub aborted_foreign: u64,
    /// ... aborted by validation.
    pub aborted_validation: u64,
    /// ... dropped by a coordinator crash.
    pub coordinator_crashed: u64,
    /// Runs whose epilogue converged every host.
    pub converged: u64,
    /// Jobs admitted across all hosts and runs.
    pub admitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs destroyed by host crashes.
    pub lost_on_crash: u64,
    /// Messages dropped by links.
    pub msgs_dropped: u64,
    /// Invariant violations (must stay zero).
    pub violations: u64,
}

impl CampaignSummary {
    /// Folds one outcome into the summary.
    pub fn absorb(&mut self, outcome: &CampaignOutcome) {
        use rtcm_rt::proto::ReconfigAbortReason as R;
        self.runs += 1;
        self.violations += outcome.violations.len() as u64;
        let report = &outcome.report;
        self.epochs += report.epochs.len() as u64;
        for e in &report.epochs {
            match e.outcome {
                Some(EpochOutcome::Committed) => self.committed += 1,
                Some(EpochOutcome::Aborted(R::AckTimeout)) => self.aborted_timeout += 1,
                Some(EpochOutcome::Aborted(R::ForeignCoordinator)) => self.aborted_foreign += 1,
                Some(EpochOutcome::Aborted(R::Validation)) => self.aborted_validation += 1,
                Some(EpochOutcome::CoordinatorCrashed) => self.coordinator_crashed += 1,
                None => {}
            }
        }
        if report.converged.is_some() {
            self.converged += 1;
        }
        for h in &report.hosts {
            self.admitted += h.admitted;
            self.completed += h.completed;
            self.lost_on_crash += h.lost_on_crash;
        }
        self.msgs_dropped += report.msgs_dropped;
    }
}

impl Campaign {
    /// Runs the campaign once and checks every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`FedError`] for structural failures (bad configs, runaway
    /// event loops); *protocol* violations land in
    /// [`CampaignOutcome::violations`] instead.
    pub fn run(&self) -> Result<CampaignOutcome, FedError> {
        let fed = Federation::new(self.specs.clone(), &self.schedule, self.opts.clone())?;
        let report = fed.run()?;
        let violations = check_invariants(&report, self.opts.converge_target);
        Ok(CampaignOutcome { report, violations })
    }

    /// The randomized campaign family: `hosts` simulated hosts, a
    /// `horizon_ms`-long seeded storm of partitions, flapping bridges,
    /// crash-during-prepare, clock skew/drift and competing swaps, ending
    /// in a convergence epilogue. The same `seed` reproduces the same
    /// campaign byte-for-byte.
    #[must_use]
    pub fn randomized(seed: u64, hosts: u16, horizon_ms: u64) -> Campaign {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA3D_0CA3_D0CA_3D0C);
        let specs: Vec<FedHostSpec> = (0..hosts)
            .map(|i| {
                let workload = RandomWorkload {
                    periodic_tasks: 2,
                    aperiodic_tasks: 2,
                    subtasks: (1, 3),
                    processors: 3,
                    ..RandomWorkload::default()
                };
                let host_seed = seed.wrapping_mul(1000).wrapping_add(u64::from(i));
                let tasks = workload.generate(host_seed).expect("workload generates");
                let config = ArrivalConfig {
                    horizon: Duration::from_millis(horizon_ms),
                    ..ArrivalConfig::default()
                };
                let arrivals = ArrivalTrace::generate(&tasks, &config, host_seed);
                FedHostSpec { services: "J_J_J".parse().expect("valid"), tasks, arrivals }
            })
            .collect();

        let targets = ["J_T_T", "J_J_T", "T_T_T", "J_T_J", "J_N_N"];
        let mut schedule = FaultSchedule::new();
        let host = |rng: &mut StdRng| rng.gen_range(0..hosts);
        // A storm of 4 incident groups spread over the horizon.
        let span = horizon_ms.saturating_sub(100).max(1);
        for _ in 0..4 {
            let t = 10 + rng.gen_range(0..span);
            match rng.gen_range(0..5_u32) {
                0 => {
                    // Partition a pair for a while.
                    let a = host(&mut rng);
                    let b = (a + 1 + rng.gen_range(0..hosts - 1)) % hosts;
                    let down: u64 = 20 + rng.gen_range(0..80_u64);
                    schedule.push(t, FaultAction::Partition { a, b });
                    schedule.push(t + down, FaultAction::Heal { a, b });
                }
                1 => {
                    // Crash-during-prepare: the crash lands at the prepare
                    // instant itself (acks round-trip in ~400 µs, far under
                    // the millisecond fault granularity), hitting either a
                    // required voter (silence → ack-timeout abort) or the
                    // coordinator (members left to expire their fences).
                    let coordinator = host(&mut rng);
                    let victim = if rng.gen_bool(0.4) {
                        coordinator
                    } else {
                        (coordinator + 1 + rng.gen_range(0..hosts - 1)) % hosts
                    };
                    let target = targets[rng.gen_range(0..targets.len())];
                    let down: u64 = 30 + rng.gen_range(0..60_u64);
                    schedule
                        .push(t, FaultAction::Swap { host: coordinator, target: target.into() });
                    schedule.push(t, FaultAction::Crash { host: victim });
                    schedule.push(t + down, FaultAction::Restart { host: victim });
                }
                2 => {
                    // Clock trouble: a skew step plus a drift change.
                    let victim = host(&mut rng);
                    let skew_us = rng.gen_range(-50_000_i64..=50_000);
                    let ppm = rng.gen_range(-2_000_i64..=2_000);
                    schedule.push(t, FaultAction::SkewClock { host: victim, skew_us });
                    schedule.push(t, FaultAction::DriftClock { host: victim, ppm });
                }
                3 => {
                    // Flapping bridge.
                    let a = host(&mut rng);
                    let b = (a + 1 + rng.gen_range(0..hosts - 1)) % hosts;
                    schedule.flap(
                        a,
                        b,
                        t,
                        3,
                        10 + rng.gen_range(0..20_u64),
                        10 + rng.gen_range(0..20_u64),
                    );
                }
                _ => {
                    // Competing swaps from two coordinators at once.
                    let c1 = host(&mut rng);
                    let c2 = (c1 + 1 + rng.gen_range(0..hosts - 1)) % hosts;
                    let t1 = targets[rng.gen_range(0..targets.len())];
                    let t2 = targets[rng.gen_range(0..targets.len())];
                    schedule.push(t, FaultAction::Swap { host: c1, target: t1.into() });
                    schedule.push(
                        t + rng.gen_range(0..5_u64),
                        FaultAction::Swap { host: c2, target: t2.into() },
                    );
                }
            }
        }

        let opts = FedOptions {
            seed,
            converge_target: Some("J_T_T".parse().expect("valid")),
            ..FedOptions::default()
        };
        Campaign { specs, schedule, opts }
    }

    /// The §7.2 replica-failover scenario, promoted from
    /// `examples/imbalanced_failover.rs`: host 0 carries the imbalanced
    /// workload (three hot processors at 0.7 utilization, two standby
    /// processors holding duplicates) under `J_T_N` — no load balancing,
    /// standbys idle. At `swap_at_ms` host 0 coordinates a swap to
    /// `J_T_T`; per-task load balancing then moves work onto the
    /// duplicates. Peers host small control workloads and serve as
    /// quorum voters.
    #[must_use]
    pub fn replica_failover(seed: u64, hosts: u16, horizon_ms: u64, swap_at_ms: u64) -> Campaign {
        let imbalanced = ImbalancedWorkload::default();
        let tasks = imbalanced.generate(seed).expect("workload generates");
        let config = ArrivalConfig {
            horizon: Duration::from_millis(horizon_ms),
            ..ArrivalConfig::default()
        };
        let arrivals = ArrivalTrace::generate(&tasks, &config, seed);
        let mut specs =
            vec![FedHostSpec { services: "J_T_N".parse().expect("valid"), tasks, arrivals }];
        for i in 1..hosts {
            let workload = RandomWorkload {
                periodic_tasks: 1,
                aperiodic_tasks: 1,
                subtasks: (1, 2),
                processors: 2,
                ..RandomWorkload::default()
            };
            let host_seed = seed.wrapping_mul(7919).wrapping_add(u64::from(i));
            let tasks = workload.generate(host_seed).expect("workload generates");
            let arrivals = ArrivalTrace::generate(&tasks, &config, host_seed);
            specs.push(FedHostSpec { services: "J_T_N".parse().expect("valid"), tasks, arrivals });
        }
        let mut schedule = FaultSchedule::new();
        schedule.push(swap_at_ms, FaultAction::Swap { host: 0, target: "J_T_T".into() });
        let opts = FedOptions { seed, ..FedOptions::default() };
        Campaign { specs, schedule, opts }
    }
}

/// Checks the campaign invariants on one report; returns the violations.
#[must_use]
pub fn check_invariants(report: &FedReport, converge_target: Option<ServiceConfig>) -> Vec<String> {
    let mut violations = Vec::new();

    // 1. Every initiated epoch resolves.
    let mut oracle: HashMap<(u64, u64), (&str, EpochOutcome)> = HashMap::new();
    for e in &report.epochs {
        match e.outcome {
            Some(outcome) => {
                oracle.insert((e.coordinator, e.epoch), (e.target.as_str(), outcome));
            }
            None => violations.push(format!(
                "epoch h{} c={} e={} never resolved",
                e.host, e.coordinator, e.epoch
            )),
        }
    }

    // 2. No partial swap: applied ⇒ oracle-committed with the same label.
    for h in &report.hosts {
        for (coordinator, epoch, label) in &h.applied {
            match oracle.get(&(*coordinator, *epoch)) {
                Some((target, EpochOutcome::Committed)) if target == label => {}
                Some((target, EpochOutcome::Committed)) => violations.push(format!(
                    "h{} applied {label} for c={coordinator} e={epoch} but the target was {target}",
                    h.host
                )),
                Some((_, outcome)) => violations.push(format!(
                    "h{} applied c={coordinator} e={epoch} which resolved {outcome:?}",
                    h.host
                )),
                None => violations
                    .push(format!("h{} applied unknown epoch c={coordinator} e={epoch}", h.host)),
            }
        }
    }

    // 3. Every committed epoch is applied at least by its coordinator.
    for e in &report.epochs {
        if e.outcome == Some(EpochOutcome::Committed) {
            let coordinator_applied = report.hosts[usize::from(e.host)]
                .applied
                .iter()
                .any(|(c, ep, _)| (*c, *ep) == (e.coordinator, e.epoch));
            if !coordinator_applied {
                violations.push(format!(
                    "committed epoch c={} e={} missing from its coordinator h{}",
                    e.coordinator, e.epoch, e.host
                ));
            }
        }
    }

    // 4. Loss-freedom.
    for h in &report.hosts {
        let accounted = h.completed + h.lost_on_crash + h.in_flight_at_end;
        if h.admitted != accounted {
            violations.push(format!(
                "h{} admitted {} but accounted {} (completed {} + lost {} + in-flight {})",
                h.host, h.admitted, accounted, h.completed, h.lost_on_crash, h.in_flight_at_end
            ));
        }
        if h.crashes == 0 && h.lost_on_crash != 0 {
            violations.push(format!("h{} never crashed yet lost {} jobs", h.host, h.lost_on_crash));
        }
    }

    // 5. Terminal convergence.
    if let Some(target) = converge_target {
        let label = target.label();
        if report.converged.as_deref() != Some(label.as_str()) {
            violations.push(format!(
                "federation failed to converge on {label}: finals = [{}]",
                report.hosts.iter().map(|h| h.final_config.clone()).collect::<Vec<_>>().join(", ")
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_campaign_is_clean_and_deterministic() {
        let campaign = Campaign::randomized(11, 8, 600);
        let a = campaign.run().unwrap();
        a.assert_clean();
        let b = campaign.run().unwrap();
        assert_eq!(a.report.trace.join("\n"), b.report.trace.join("\n"));
    }

    #[test]
    fn different_seeds_give_different_weather() {
        let a = Campaign::randomized(1, 8, 600).run().unwrap();
        let b = Campaign::randomized(2, 8, 600).run().unwrap();
        assert_ne!(a.report.trace.join("\n"), b.report.trace.join("\n"));
    }

    #[test]
    fn replica_failover_moves_load_onto_the_standbys() {
        // Control: no swap — the standby processors never run anything.
        let mut control = Campaign::replica_failover(17, 4, 2_000, 1_000);
        control.schedule = FaultSchedule::new();
        let control_report = control.run().unwrap();
        control_report.assert_clean();
        let standby_busy: u64 = control_report.report.hosts[0].busy_ns[3..].iter().sum();
        assert_eq!(standby_busy, 0, "standbys must idle under J_T_N");

        // Failover: mid-run swap to per-task LB wakes the duplicates.
        let outcome = Campaign::replica_failover(17, 4, 2_000, 1_000).run().unwrap();
        outcome.assert_clean();
        let report = &outcome.report;
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].outcome, Some(EpochOutcome::Committed));
        assert_eq!(report.hosts[0].final_config, "J_T_T");
        let standby_busy: u64 = report.hosts[0].busy_ns[3..].iter().sum();
        assert!(standby_busy > 0, "standbys must carry load after the swap");
    }

    #[test]
    fn summary_accumulates_the_oracle_accounting() {
        let mut summary = CampaignSummary::default();
        for seed in 0..5 {
            let outcome = Campaign::randomized(seed, 8, 500).run().unwrap();
            summary.absorb(&outcome);
        }
        assert_eq!(summary.runs, 5);
        assert_eq!(summary.violations, 0);
        assert_eq!(summary.converged, 5);
        assert_eq!(
            summary.epochs,
            summary.committed
                + summary.aborted_timeout
                + summary.aborted_foreign
                + summary.aborted_validation
                + summary.coordinator_crashed
        );
        assert!(summary.admitted >= summary.completed);
    }
}
