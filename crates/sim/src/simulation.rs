//! The end-to-end middleware simulation: task effectors, the central task
//! manager (admission control + load balancing), idle resetters and
//! prioritized subtask execution, all in virtual time.
//!
//! The event flow mirrors the paper's Figure 7:
//!
//! 1. a job arrives at the task effector (TE) of its first subtask's
//!    primary processor; the TE holds it and pushes a "Task Arrive" event
//!    to the task manager (op 1 + comm delay, op 2);
//! 2. the manager — a single FIFO server — runs the load balancer (op 3)
//!    and the admission test (op 4), then pushes "Accept" to the releasing
//!    TE (comm delay), which releases the first subjob (op 5/6);
//! 3. subjobs execute under preemptive EDMS priorities; completions trigger
//!    the next stage (comm delay when crossing processors);
//! 4. when a processor idles, its idle resetter reports completed subjobs
//!    (op 7 + comm delay) and the manager removes their contributions
//!    (op 8).
//!
//! Task effectors honor the per-task strategy: once a periodic task is
//! admitted under AC-per-task (and load balancing is not per-job), later
//! jobs release locally without any manager round-trip — and once rejected,
//! later jobs are dropped locally.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use rtcm_core::admission::{AcStats, AdmissionController, Decision};
use rtcm_core::balance::Assignment;
use rtcm_core::govern::{
    slack_and_imbalance, CumulativeLoad, Governor, GovernorPolicy, PolicyError, WindowMetrics,
    WindowSensor,
};
use rtcm_core::ledger::ContributionKey;
use rtcm_core::metrics::{DelayStats, UtilizationRatio};
use rtcm_core::priority::{assign_edms, Priority};
use rtcm_core::reconfig::{HandoverReport, ModeChange, ModeSchedule};
use rtcm_core::reset::{IdleResetReport, IdleResetter};
use rtcm_core::strategy::{AcStrategy, InvalidConfigError, LbStrategy, ServiceConfig};
use rtcm_core::task::{JobId, TaskId, TaskSet};
use rtcm_core::time::{Duration, Time};
use rtcm_workload::ArrivalTrace;

use crate::cpu::{Completion, Cpu};
use crate::overhead::OverheadModel;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The middleware strategy combination under test.
    pub services: ServiceConfig,
    /// Where virtual time goes besides subtask execution.
    pub overheads: OverheadModel,
    /// Seed for overhead jitter (workload randomness lives in the trace).
    pub seed: u64,
}

impl SimConfig {
    /// A configuration with paper-calibrated overheads.
    #[must_use]
    pub fn new(services: ServiceConfig) -> Self {
        SimConfig { services, overheads: OverheadModel::paper_calibrated(), seed: 0 }
    }

    /// A configuration with all overheads at zero (AUB's idealized world).
    #[must_use]
    pub fn ideal(services: ServiceConfig) -> Self {
        SimConfig { services, overheads: OverheadModel::zero(), seed: 0 }
    }
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// The paper's accepted utilization ratio.
    pub ratio: UtilizationRatio,
    /// Jobs that finished their last subtask.
    pub jobs_completed: u64,
    /// Completed jobs that finished after their end-to-end deadline.
    pub deadline_misses: u64,
    /// End-to-end response times of completed jobs.
    pub response: DelayStats,
    /// Accepted jobs whose placement differed from the primary placement.
    pub reallocations: u64,
    /// Idle-reset reports received by the manager.
    pub ir_reports: u64,
    /// Admission-controller counters.
    pub ac: AcStats,
    /// Largest backlog observed in the manager's FIFO queue.
    pub max_manager_queue: usize,
    /// Per-processor busy time.
    pub cpu_busy: Vec<Duration>,
    /// Longest run of consecutively skipped jobs per task (tasks that never
    /// skipped are omitted) — how much C1 tolerance the configuration
    /// actually demanded.
    pub skip_runs: Vec<(TaskId, u32)>,
    /// Longest skip run across all tasks.
    pub max_consecutive_skips: u32,
    /// Mode switches executed — scheduled ([`ModeSchedule`]) plus
    /// governor-decided (0 for static runs).
    pub mode_switches: u64,
    /// One ledger-handover report per executed mode switch, in execution
    /// order.
    pub mode_changes: Vec<HandoverReport>,
    /// Sensing windows closed by the governor ([`simulate_governed`]; 0
    /// otherwise).
    pub governor_windows: u64,
    /// Mode switches decided by the governor (a subset of
    /// [`SimReport::mode_switches`]).
    pub governor_swaps: u64,
    /// Virtual time when the last event fired.
    pub end: Time,
}

/// Errors preventing a simulation from starting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The strategy combination is one of the 3 invalid ones.
    InvalidConfig(InvalidConfigError),
    /// The trace references a task missing from the set.
    UnknownTask {
        /// The offending task id.
        task: TaskId,
    },
    /// The distributed admission architecture only supports per-job
    /// admission control without idle resetting (see
    /// [`simulate_distributed`]).
    UnsupportedDistributed {
        /// The offending combination.
        services: ServiceConfig,
    },
    /// The governor policy is unusable (invalid rule target, zero
    /// hysteresis, non-finite threshold) — see [`simulate_governed`].
    InvalidPolicy(PolicyError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(e) => write!(f, "{e}"),
            SimError::UnknownTask { task } => {
                write!(f, "arrival trace references unknown task {task}")
            }
            SimError::UnsupportedDistributed { services } => write!(
                f,
                "distributed admission control supports only J_N_* combinations, got {services}"
            ),
            SimError::InvalidPolicy(e) => write!(f, "invalid governor policy: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<InvalidConfigError> for SimError {
    fn from(e: InvalidConfigError) -> Self {
        SimError::InvalidConfig(e)
    }
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    ManagerRecv(ManagerReq),
    ManagerDone,
    /// A governor sensing window closes: difference the cumulative
    /// counters, evaluate the policy, possibly reconfigure. Ticks chain
    /// themselves while the trace horizon lasts.
    GovernorTick,
    Release {
        job: JobId,
        subtask: usize,
        is_job_release: bool,
    },
    CpuComplete {
        proc: usize,
        gen: u64,
    },
    /// A scheduled mode change fires: reconfigure the manager's admission
    /// controller (ledger handover included) and every node's local
    /// strategy state. Ties with same-instant arrivals resolve switch
    /// first, so the new mode governs the arrival.
    ModeSwitch(usize),
    /// Distributed mode: a peer's admission commit reaches `node`.
    CommitSync {
        node: usize,
        job: JobId,
        arrival: Time,
        assignment: Assignment,
    },
}

#[derive(Debug)]
enum ManagerReq {
    TaskArrive { task: TaskId, seq: u64, te_arrival: Time },
    IdleReset(IdleResetReport),
}

struct Scheduled {
    time: Time,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for the max-heap: earliest (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Debug, Clone)]
struct JobState {
    te_arrival: Time,
    abs_deadline: Time,
    assignment: Assignment,
}

#[derive(Debug, Clone)]
enum TeDecision {
    Admitted(Assignment),
    Rejected,
}

#[derive(Debug, Clone, Copy)]
struct SubjobCtx {
    job: JobId,
    subtask: usize,
}

/// Per-job outcome, for experiments that need finer grain than the
/// aggregate report (e.g. in-burst acceptance ratios).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job.
    pub job: JobId,
    /// Arrival at its task effector.
    pub arrival: Time,
    /// True if the job was released (admitted).
    pub released: bool,
    /// Completion instant of the last subtask, if it completed.
    pub completed: Option<Time>,
    /// True if it completed after its end-to-end deadline.
    pub missed: bool,
    /// Utilization weight `Σ C/D` (the accepted-ratio metric's unit).
    pub utilization: f64,
}

/// Runs one simulation of `trace` over `tasks` under `config`.
///
/// # Errors
///
/// Returns [`SimError`] for invalid strategy combinations or traces
/// referencing unknown tasks. Panics never occur for workloads produced by
/// `rtcm-workload` against their own task sets.
pub fn simulate(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    Simulation::new(tasks, trace, config, false)?.run().map(|(report, _)| report)
}

/// Like [`simulate`], but with a [`ModeSchedule`] of timed `ServiceConfig`
/// changes applied mid-run: at each change the manager's admission
/// controller executes the full ledger handover
/// (`AdmissionController::reconfigure` — reservations drained/reseeded,
/// admitted jobs carried) and every node clears its task-effector cache
/// and swaps its idle-resetter strategy, mirroring the runtime's two-phase
/// commit point. Figure-5/6-style experiments can thereby compare static
/// configurations against mid-run switches on identical traces.
///
/// # Errors
///
/// As [`simulate`], plus [`SimError::InvalidConfig`] for schedules
/// containing §4.5-invalid combinations (checked before the run starts).
pub fn simulate_with_schedule(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
    schedule: &ModeSchedule,
) -> Result<SimReport, SimError> {
    schedule.validate()?;
    let mut sim = Simulation::new(tasks, trace, config, false)?;
    sim.schedule = schedule.changes().to_vec();
    sim.run().map(|(report, _)| report)
}

/// Like [`simulate`], additionally returning one [`JobRecord`] per trace
/// arrival (in arrival order).
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_recorded(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
) -> Result<(SimReport, Vec<JobRecord>), SimError> {
    let (report, records) = Simulation::new(tasks, trace, config, true)?.run()?;
    Ok((report, records.expect("recording was enabled")))
}

/// [`simulate_with_schedule`] plus per-job records, for bucketed
/// before/after-switch acceptance analysis.
///
/// # Errors
///
/// As [`simulate_with_schedule`].
pub fn simulate_recorded_with_schedule(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
    schedule: &ModeSchedule,
) -> Result<(SimReport, Vec<JobRecord>), SimError> {
    schedule.validate()?;
    let mut sim = Simulation::new(tasks, trace, config, true)?;
    sim.schedule = schedule.changes().to_vec();
    let (report, records) = sim.run()?;
    Ok((report, records.expect("recording was enabled")))
}

/// One governor-decided mode switch of a governed simulation, with full
/// provenance: when, which rule, and what the ledger handover did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernedSwitch {
    /// Virtual instant of the switch.
    pub at: Time,
    /// Sensing window ordinal (1-based) in which the rule fired.
    pub window: u64,
    /// Name of the rule that fired.
    pub rule: String,
    /// Configuration left behind.
    pub from: ServiceConfig,
    /// Configuration entered.
    pub to: ServiceConfig,
    /// The admission-state handover executed at the switch.
    pub handover: HandoverReport,
}

/// Everything a governed run's sensing loop observed: one metrics row per
/// window plus every switch decision — the raw material for tuning
/// policies offline before they govern a live system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GovernorTrace {
    /// `(window end, metrics)` per closed sensing window.
    pub windows: Vec<(Time, WindowMetrics)>,
    /// Governor-decided switches, in execution order.
    pub switches: Vec<GovernedSwitch>,
}

/// Runs a **governed** simulation: no pre-programmed [`ModeSchedule`] —
/// instead a [`GovernorPolicy`] senses the load every `window` of virtual
/// time and reconfigures the system itself when a rule's hysteresis is
/// satisfied, exactly as `System::spawn_governor` does on the threaded
/// runtime (same `rtcm_core::govern` state machine, so a policy tuned
/// here transfers verbatim).
///
/// Each window's metrics are produced **incrementally**: cumulative
/// counters the simulation maintains anyway are differenced in O(1), and
/// the AUB slack / imbalance gauges read the ledger's per-processor
/// totals, which the admission funnel keeps current — the same
/// touched-set discipline as the incremental admission path, so a
/// governed run never pays a per-window rescan of jobs or contributions
/// (the brute-force rescan survives as the differential oracle in the
/// tests).
///
/// # Errors
///
/// As [`simulate`], plus [`SimError::InvalidPolicy`] for unusable
/// policies (checked before the run starts).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn simulate_governed(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
    policy: &GovernorPolicy,
    window: Duration,
) -> Result<(SimReport, GovernorTrace), SimError> {
    let mut sim = Simulation::new(tasks, trace, config, false)?;
    sim.attach_governor(policy, window)?;
    let (report, gov_trace, _) = sim.run_full()?;
    Ok((report, gov_trace))
}

/// [`simulate_governed`] plus per-job records, for bucketed acceptance
/// analysis of governed runs.
///
/// # Errors
///
/// As [`simulate_governed`].
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn simulate_governed_recorded(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
    policy: &GovernorPolicy,
    window: Duration,
) -> Result<(SimReport, GovernorTrace, Vec<JobRecord>), SimError> {
    let mut sim = Simulation::new(tasks, trace, config, true)?;
    sim.attach_governor(policy, window)?;
    let (report, gov_trace, records) = sim.run_full()?;
    Ok((report, gov_trace, records.expect("recording was enabled")))
}

/// One contiguous stretch of a subjob executing on a processor —
/// Gantt-chart material from [`simulate_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecSpan {
    /// The processor.
    pub processor: u16,
    /// The executing job.
    pub job: JobId,
    /// The stage index.
    pub subtask: usize,
    /// Segment start.
    pub start: Time,
    /// Segment end (preemption or completion).
    pub end: Time,
    /// True if this segment finished the subjob; false if it was preempted.
    pub completed: bool,
}

/// Like [`simulate`], additionally returning the full execution trace
/// (every start/preempt/finish segment on every processor), for Gantt
/// rendering and schedule inspection.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_traced(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
) -> Result<(SimReport, Vec<ExecSpan>), SimError> {
    let mut sim = Simulation::new(tasks, trace, config, false)?;
    for cpu in &mut sim.cpus {
        cpu.set_tracing(true);
    }
    sim.run_traced()
}

/// Runs the **distributed** admission architecture the paper's §3 weighs
/// against its centralized design: one admission controller per
/// application processor decides *locally and immediately* (no manager
/// round-trip), and commits are synchronized to peers with one network
/// delay. The stale views let concurrent admissions race past the bound,
/// so — unlike the centralized architecture — admitted jobs **can** miss
/// deadlines; the `ablation_distributed` bench quantifies that trade
/// against the saved round-trip.
///
/// Only `J_N_*` combinations are supported: per-task reservations and
/// idle-reset fan-out would each need their own synchronization protocol,
/// which is exactly the complexity §3 cites for preferring the
/// centralized design.
///
/// # Errors
///
/// As [`simulate`], plus [`SimError::UnsupportedDistributed`] for
/// combinations other than `J_N_*`.
pub fn simulate_distributed(
    tasks: &TaskSet,
    trace: &ArrivalTrace,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    if config.services.ac != AcStrategy::PerJob
        || config.services.ir != rtcm_core::strategy::IrStrategy::None
    {
        return Err(SimError::UnsupportedDistributed { services: config.services });
    }
    let mut sim = Simulation::new(tasks, trace, config, false)?;
    sim.distributed = true;
    let procs = tasks.processor_count();
    sim.node_acs = (0..procs)
        .map(|_| {
            AdmissionController::new(config.services, procs).expect("J_N_* combinations are valid")
        })
        .collect();
    sim.run().map(|(report, _)| report)
}

struct Simulation<'a> {
    tasks: &'a TaskSet,
    trace: &'a ArrivalTrace,
    services: ServiceConfig,
    overheads: OverheadModel,
    priorities: HashMap<TaskId, Priority>,
    ac: AdmissionController,
    cpus: Vec<Cpu<SubjobCtx>>,
    resetters: Vec<IdleResetter>,
    te_cache: HashMap<TaskId, TeDecision>,
    jobs: HashMap<JobId, JobState>,
    manager_current: Option<ManagerReq>,
    manager_queue: VecDeque<ManagerReq>,
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: Time,
    rng: StdRng,
    report: SimReport,
    records: Option<(Vec<JobRecord>, HashMap<JobId, usize>)>,
    skips: rtcm_core::metrics::SkipTracker,
    /// Timed mode changes to apply (empty for static runs).
    schedule: Vec<ModeChange>,
    /// Closed-loop governor state (None for ungoverned runs).
    gov: Option<GovState>,
    /// Distributed-architecture state (empty in centralized mode).
    distributed: bool,
    node_acs: Vec<AdmissionController>,
}

/// Everything a governed run threads through its sensing ticks.
struct GovState {
    governor: Governor,
    sensor: WindowSensor,
    window: Duration,
    /// Last instant a tick may fire (one window past the final arrival, so
    /// the tail window is still sensed).
    horizon: Time,
    trace: GovernorTrace,
}

impl<'a> Simulation<'a> {
    fn new(
        tasks: &'a TaskSet,
        trace: &'a ArrivalTrace,
        config: &SimConfig,
        record_jobs: bool,
    ) -> Result<Self, SimError> {
        for arrival in trace.iter() {
            if tasks.get(arrival.task).is_none() {
                return Err(SimError::UnknownTask { task: arrival.task });
            }
        }
        let procs = tasks.processor_count();
        let ac = AdmissionController::new(config.services, procs)?;
        Ok(Simulation {
            tasks,
            trace,
            services: config.services,
            overheads: config.overheads,
            priorities: assign_edms(tasks),
            ac,
            cpus: (0..procs).map(|_| Cpu::new()).collect(),
            resetters: (0..procs)
                .map(|p| {
                    IdleResetter::new(config.services.ir, rtcm_core::task::ProcessorId(p as u16))
                })
                .collect(),
            te_cache: HashMap::new(),
            jobs: HashMap::new(),
            manager_current: None,
            manager_queue: VecDeque::new(),
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
            report: SimReport {
                ratio: UtilizationRatio::new(),
                jobs_completed: 0,
                deadline_misses: 0,
                response: DelayStats::new(),
                reallocations: 0,
                ir_reports: 0,
                ac: AcStats::default(),
                max_manager_queue: 0,
                cpu_busy: vec![Duration::ZERO; procs],
                skip_runs: Vec::new(),
                max_consecutive_skips: 0,
                mode_switches: 0,
                mode_changes: Vec::new(),
                governor_windows: 0,
                governor_swaps: 0,
                end: Time::ZERO,
            },
            records: if record_jobs { Some((Vec::new(), HashMap::new())) } else { None },
            skips: rtcm_core::metrics::SkipTracker::new(),
            schedule: Vec::new(),
            gov: None,
            distributed: false,
            node_acs: Vec::new(),
        })
    }

    /// Arms the closed-loop governor: validates `policy` and computes the
    /// sensing horizon from the trace.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (a zero-width sensing window would tick
    /// forever at one instant).
    fn attach_governor(
        &mut self,
        policy: &GovernorPolicy,
        window: Duration,
    ) -> Result<(), SimError> {
        assert!(!window.is_zero(), "governor window must be positive");
        let governor = Governor::new(policy.clone()).map_err(SimError::InvalidPolicy)?;
        let horizon = self.trace.arrivals().last().map_or(Time::ZERO, |a| a.time) + window;
        self.gov = Some(GovState {
            governor,
            sensor: WindowSensor::new(),
            window,
            horizon,
            trace: GovernorTrace::default(),
        });
        Ok(())
    }

    /// Enqueues every scheduled mode switch. Called before the first
    /// arrival is chained, so a switch coinciding with an arrival holds
    /// the lower sequence number and fires first (switch-before-arrival
    /// tie rule).
    fn schedule_mode_switches(&mut self) {
        for i in 0..self.schedule.len() {
            let at = self.schedule[i].at;
            self.schedule(at, Ev::ModeSwitch(i));
        }
    }

    fn run(self) -> Result<(SimReport, Option<Vec<JobRecord>>), SimError> {
        let (report, _, records) = self.run_full()?;
        Ok((report, records))
    }

    fn run_full(mut self) -> Result<(SimReport, GovernorTrace, Option<Vec<JobRecord>>), SimError> {
        self.schedule_mode_switches();
        if let Some(gov) = &self.gov {
            // First sensing tick one window in; ticks chain themselves.
            let first = Time::ZERO + gov.window;
            if first <= gov.horizon {
                self.schedule(first, Ev::GovernorTick);
            }
        }
        if !self.trace.is_empty() {
            let t = self.trace.arrivals()[0].time;
            self.schedule(t, Ev::Arrival(0));
        }
        while let Some(Scheduled { time, ev, .. }) = self.heap.pop() {
            debug_assert!(time >= self.now, "virtual time must be monotone");
            self.now = time;
            self.dispatch(ev);
        }
        self.report.end = self.now;
        self.report.ac = if self.distributed {
            let mut total = AcStats::default();
            for ac in &self.node_acs {
                let s = ac.stats();
                total.tested += s.tested;
                total.admitted += s.admitted;
                total.rejected += s.rejected;
                total.pass_throughs += s.pass_throughs;
                total.reset_reports += s.reset_reports;
                total.reset_utilization += s.reset_utilization;
            }
            total
        } else {
            self.ac.stats()
        };
        for (p, cpu) in self.cpus.iter().enumerate() {
            self.report.cpu_busy[p] = cpu.busy_time();
        }
        self.report.skip_runs = self.skips.per_task();
        self.report.max_consecutive_skips = self.skips.worst_case();
        let gov_trace = self.gov.map(|g| g.trace).unwrap_or_default();
        Ok((self.report, gov_trace, self.records.map(|(records, _)| records)))
    }

    /// [`run`](Self::run) plus execution-span extraction from the CPUs'
    /// transition logs.
    fn run_traced(mut self) -> Result<(SimReport, Vec<ExecSpan>), SimError> {
        if !self.trace.is_empty() {
            let t = self.trace.arrivals()[0].time;
            self.schedule(t, Ev::Arrival(0));
        }
        while let Some(Scheduled { time, ev, .. }) = self.heap.pop() {
            self.now = time;
            self.dispatch(ev);
        }
        let mut spans = Vec::new();
        for (p, cpu) in self.cpus.iter_mut().enumerate() {
            let mut open: Option<(SubjobCtx, Time)> = None;
            for transition in cpu.drain_transitions() {
                match transition {
                    crate::cpu::Transition::Start { at, payload } => {
                        debug_assert!(open.is_none(), "start while running");
                        open = Some((payload, at));
                    }
                    crate::cpu::Transition::Preempt { at, payload }
                    | crate::cpu::Transition::Finish { at, payload } => {
                        let completed = matches!(transition, crate::cpu::Transition::Finish { .. });
                        if let Some((ctx, start)) = open.take() {
                            debug_assert_eq!(ctx.job, payload.job, "span pairing");
                            spans.push(ExecSpan {
                                processor: p as u16,
                                job: ctx.job,
                                subtask: ctx.subtask,
                                start,
                                end: at,
                                completed,
                            });
                        }
                    }
                }
            }
        }
        spans.sort_by_key(|s| (s.start, s.processor));
        self.report.end = self.now;
        self.report.ac = self.ac.stats();
        for (p, cpu) in self.cpus.iter().enumerate() {
            self.report.cpu_busy[p] = cpu.busy_time();
        }
        self.report.skip_runs = self.skips.per_task();
        self.report.max_consecutive_skips = self.skips.worst_case();
        Ok((self.report, spans))
    }

    fn record_arrival(&mut self, job: JobId, arrival: Time, utilization: f64) {
        if let Some((records, index)) = &mut self.records {
            index.insert(job, records.len());
            records.push(JobRecord {
                job,
                arrival,
                released: false,
                completed: None,
                missed: false,
                utilization,
            });
        }
    }

    fn record_release_of(&mut self, job: JobId) {
        if let Some((records, index)) = &mut self.records {
            if let Some(&i) = index.get(&job) {
                records[i].released = true;
            }
        }
    }

    fn record_completion_of(&mut self, job: JobId, completed: Time, missed: bool) {
        if let Some((records, index)) = &mut self.records {
            if let Some(&i) = index.get(&job) {
                records[i].completed = Some(completed);
                records[i].missed = missed;
            }
        }
    }

    fn schedule(&mut self, time: Time, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, ev });
    }

    fn comm(&mut self) -> Duration {
        self.overheads.comm.sample(&mut self.rng)
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(idx) => self.on_arrival(idx),
            Ev::ManagerRecv(req) => self.on_manager_recv(req),
            Ev::ManagerDone => self.on_manager_done(),
            Ev::Release { job, subtask, is_job_release } => {
                self.on_release(job, subtask, is_job_release);
            }
            Ev::CpuComplete { proc, gen } => self.on_cpu_complete(proc, gen),
            Ev::ModeSwitch(idx) => self.on_mode_switch(idx),
            Ev::GovernorTick => self.on_governor_tick(),
            Ev::CommitSync { node, job, arrival, assignment } => {
                let task = self.tasks.get(job.task).expect("validated in new()");
                let ac = &mut self.node_acs[node];
                ac.expire(self.now);
                ac.apply_remote_commit(task, job.seq, arrival, &assignment)
                    .expect("peers commit validated assignments");
            }
        }
    }

    /// Executes one scheduled mode change, mirroring the runtime's commit
    /// point: ledger handover at the manager, cache clear + resetter swap
    /// at every node.
    fn on_mode_switch(&mut self, idx: usize) {
        let target = self.schedule[idx].services;
        self.apply_switch(target);
    }

    /// The commit point shared by scheduled and governed switches.
    fn apply_switch(&mut self, target: ServiceConfig) -> HandoverReport {
        let handover = self
            .ac
            .reconfigure(target, self.now, self.tasks)
            .expect("switch targets are validated before the run starts");
        self.services = target;
        self.te_cache.clear();
        for resetter in &mut self.resetters {
            resetter.set_strategy(target.ir);
        }
        self.report.mode_switches += 1;
        self.report.mode_changes.push(handover);
        handover
    }

    /// Closes one governor sensing window: O(1) counter deltas + ledger
    /// gauge reads (the incrementally maintained per-processor totals), a
    /// pure policy evaluation, and — if a rule fired — the same commit
    /// point a scheduled switch takes.
    fn on_governor_tick(&mut self) {
        let Some(mut gov) = self.gov.take() else { return };
        // Clean the current set up to the boundary so the gauges reflect
        // live entries only (heap-incremental, like any arrival).
        self.ac.expire(self.now);
        let cum = CumulativeLoad {
            arrived_jobs: self.report.ratio.arrived_jobs(),
            arrived_utilization: self.report.ratio.arrived_utilization(),
            released_utilization: self.report.ratio.released_utilization(),
            ir_reports: self.report.ir_reports,
            // The simulator's switches are instantaneous: no prepare
            // window, so nothing is ever deferred.
            deferred: 0,
        };
        let (slack, imbalance) = slack_and_imbalance(&self.ac.ledger().utilizations());
        let metrics = gov.sensor.sample(cum, slack, imbalance);
        self.report.governor_windows += 1;
        gov.trace.windows.push((self.now, metrics));
        if let Some(decision) = gov.governor.observe(self.services, &metrics) {
            let from = self.services;
            let handover = self.apply_switch(decision.target);
            self.report.governor_swaps += 1;
            gov.trace.switches.push(GovernedSwitch {
                at: self.now,
                window: decision.window,
                rule: decision.rule_name,
                from,
                to: decision.target,
                handover,
            });
        }
        let next = self.now + gov.window;
        if next <= gov.horizon {
            self.schedule(next, Ev::GovernorTick);
        }
        self.gov = Some(gov);
    }

    fn on_arrival(&mut self, idx: usize) {
        // Chain the next trace arrival to keep the heap small.
        if idx + 1 < self.trace.len() {
            let next = self.trace.arrivals()[idx + 1];
            self.schedule(next.time, Ev::Arrival(idx + 1));
        }
        let arrival = self.trace.arrivals()[idx];
        let task = self.tasks.get(arrival.task).expect("validated in new()");
        self.report.ratio.record_arrival(task.job_utilization());
        self.record_arrival(
            JobId::new(arrival.task, arrival.seq),
            arrival.time,
            task.job_utilization(),
        );

        if self.distributed {
            self.distributed_arrival(arrival.task, arrival.seq, arrival.time);
            return;
        }

        // The TE's per-task fast path: release or drop locally when the
        // periodic task's fate is already known and no per-job relocation is
        // configured.
        let per_task_te = self.services.ac == AcStrategy::PerTask && task.is_periodic();
        if per_task_te {
            match self.te_cache.get(&arrival.task) {
                Some(TeDecision::Admitted(assignment))
                    if self.services.lb != LbStrategy::PerJob =>
                {
                    self.skips.record(arrival.task, true);
                    let assignment = assignment.clone();
                    let job = JobId::new(arrival.task, arrival.seq);
                    self.jobs.insert(
                        job,
                        JobState {
                            te_arrival: arrival.time,
                            abs_deadline: arrival.time + task.deadline(),
                            assignment: assignment.clone(),
                        },
                    );
                    let arrival_proc = task.subtasks()[0].primary;
                    let mut t = self.now + self.overheads.te_release;
                    if assignment.processor(0) != arrival_proc {
                        t += self.comm();
                    }
                    self.schedule(t, Ev::Release { job, subtask: 0, is_job_release: true });
                    return;
                }
                Some(TeDecision::Rejected) => {
                    self.skips.record(arrival.task, false);
                    return;
                }
                _ => {}
            }
        }

        let t = self.now + self.overheads.te_hold + self.comm();
        self.schedule(
            t,
            Ev::ManagerRecv(ManagerReq::TaskArrive {
                task: arrival.task,
                seq: arrival.seq,
                te_arrival: arrival.time,
            }),
        );
    }

    /// Distributed mode: the arrival processor's own controller decides
    /// immediately on its (possibly stale) view, releases locally, and
    /// broadcasts the commit to every peer with one network delay.
    fn distributed_arrival(&mut self, task_id: TaskId, seq: u64, arrival: Time) {
        let task = self.tasks.get(task_id).expect("validated in new()");
        let arrival_proc = task.subtasks()[0].primary.index();
        let ac = &mut self.node_acs[arrival_proc];
        ac.expire(self.now);
        let decision = ac
            .handle_arrival(task, seq, arrival)
            .expect("trace arrivals are unique and tasks fit the deployment");
        match decision {
            Decision::Accept { assignment, .. } => {
                self.skips.record(task_id, true);
                if assignment.is_reallocation(task) {
                    self.report.reallocations += 1;
                }
                let job = JobId::new(task_id, seq);
                self.jobs.insert(
                    job,
                    JobState {
                        te_arrival: arrival,
                        abs_deadline: arrival + task.deadline(),
                        assignment: assignment.clone(),
                    },
                );
                let release_at = self.now + self.overheads.te_release;
                self.schedule(release_at, Ev::Release { job, subtask: 0, is_job_release: true });
                for node in 0..self.node_acs.len() {
                    if node == arrival_proc {
                        continue;
                    }
                    let delay = self.comm();
                    self.schedule(
                        self.now + delay,
                        Ev::CommitSync { node, job, arrival, assignment: assignment.clone() },
                    );
                }
            }
            Decision::Reject { .. } => {
                self.skips.record(task_id, false);
            }
        }
    }

    fn manager_service_time(&self, req: &ManagerReq) -> Duration {
        match req {
            ManagerReq::TaskArrive { .. } => {
                let lb = if self.services.lb.is_enabled() {
                    self.overheads.lb_plan
                } else {
                    Duration::ZERO
                };
                self.overheads.ac_test + lb
            }
            ManagerReq::IdleReset(_) => self.overheads.ir_update,
        }
    }

    fn on_manager_recv(&mut self, req: ManagerReq) {
        if self.manager_current.is_none() {
            let svc = self.manager_service_time(&req);
            self.manager_current = Some(req);
            self.schedule(self.now + svc, Ev::ManagerDone);
        } else {
            self.manager_queue.push_back(req);
            self.report.max_manager_queue =
                self.report.max_manager_queue.max(self.manager_queue.len());
        }
    }

    fn on_manager_done(&mut self) {
        let req = self.manager_current.take().expect("ManagerDone with no request in service");
        match req {
            ManagerReq::TaskArrive { task, seq, te_arrival } => {
                self.decide(task, seq, te_arrival);
            }
            ManagerReq::IdleReset(report) => {
                self.ac.apply_idle_reset(report.processor, &report.completed);
                self.report.ir_reports += 1;
            }
        }
        if let Some(next) = self.manager_queue.pop_front() {
            let svc = self.manager_service_time(&next);
            self.manager_current = Some(next);
            self.schedule(self.now + svc, Ev::ManagerDone);
        }
    }

    fn decide(&mut self, task_id: TaskId, seq: u64, te_arrival: Time) {
        let task = self.tasks.get(task_id).expect("validated in new()");
        // Clean the current set up to manager time, then test against the
        // job's true (arrival-based) deadline.
        self.ac.expire(self.now);
        let decision = self
            .ac
            .handle_arrival(task, seq, te_arrival)
            .expect("trace arrivals are unique and tasks fit the deployment");
        match decision {
            Decision::Accept { assignment, .. } => {
                self.skips.record(task_id, true);
                if assignment.is_reallocation(task) {
                    self.report.reallocations += 1;
                }
                let job = JobId::new(task_id, seq);
                self.jobs.insert(
                    job,
                    JobState {
                        te_arrival,
                        abs_deadline: te_arrival + task.deadline(),
                        assignment: assignment.clone(),
                    },
                );
                if task.is_periodic()
                    && self.services.ac == AcStrategy::PerTask
                    && self.services.lb != LbStrategy::PerJob
                {
                    self.te_cache.insert(task_id, TeDecision::Admitted(assignment.clone()));
                }
                let t = self.now + self.comm() + self.overheads.te_release;
                self.schedule(t, Ev::Release { job, subtask: 0, is_job_release: true });
            }
            Decision::Reject { .. } => {
                self.skips.record(task_id, false);
                if task.is_periodic() && self.services.ac == AcStrategy::PerTask {
                    self.te_cache.insert(task_id, TeDecision::Rejected);
                }
            }
        }
    }

    fn on_release(&mut self, job: JobId, subtask: usize, is_job_release: bool) {
        let task = self.tasks.get(job.task).expect("validated in new()");
        if is_job_release {
            self.report.ratio.record_release(task.job_utilization());
            self.record_release_of(job);
        }
        let state = self.jobs.get(&job).expect("release of unknown job");
        let proc = state.assignment.processor(subtask).index();
        let priority = self.priorities[&job.task];
        let exec = task.subtasks()[subtask].execution_time;
        if let Some(started) =
            self.cpus[proc].enqueue(self.now, priority, exec, SubjobCtx { job, subtask })
        {
            self.schedule(started.completes_at, Ev::CpuComplete { proc, gen: started.gen });
        }
    }

    fn on_cpu_complete(&mut self, proc: usize, gen: u64) {
        let outcome = self.cpus[proc].complete(self.now, gen);
        let (ctx, next) = match outcome {
            Completion::Stale => return,
            Completion::Done { payload, next } => (payload, next),
        };
        if let Some(started) = next {
            self.schedule(started.completes_at, Ev::CpuComplete { proc, gen: started.gen });
        }

        let task = self.tasks.get(ctx.job.task).expect("validated in new()");
        let state = self.jobs.get(&ctx.job).expect("completion of unknown job").clone();

        // Report to the local idle resetter (strategy-filtered inside).
        self.resetters[proc].record_completion(
            ContributionKey::new(ctx.job, ctx.subtask),
            state.abs_deadline,
            task.is_periodic(),
        );

        if ctx.subtask + 1 == task.subtasks().len() {
            let response = self.now.elapsed_since(state.te_arrival);
            self.report.response.record(response);
            self.report.jobs_completed += 1;
            let missed = self.now > state.abs_deadline;
            if missed {
                self.report.deadline_misses += 1;
            }
            self.record_completion_of(ctx.job, self.now, missed);
            self.jobs.remove(&ctx.job);
        } else {
            let next_proc = state.assignment.processor(ctx.subtask + 1);
            let delay = if next_proc.index() == proc { Duration::ZERO } else { self.comm() };
            self.schedule(
                self.now + delay,
                Ev::Release { job: ctx.job, subtask: ctx.subtask + 1, is_job_release: false },
            );
        }

        if self.cpus[proc].is_idle() {
            if let Some(report) = self.resetters[proc].on_idle(self.now) {
                let t = self.now + self.overheads.ir_report + self.comm();
                self.schedule(t, Ev::ManagerRecv(ManagerReq::IdleReset(report)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcm_core::task::{ProcessorId, TaskBuilder};
    use rtcm_workload::{ArrivalConfig, Phasing};

    fn one_task_set() -> TaskSet {
        let t = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(10), ProcessorId(0), [ProcessorId(1)])
            .build()
            .unwrap();
        TaskSet::from_tasks([t]).unwrap()
    }

    fn trace_for(tasks: &TaskSet, horizon_ms: u64) -> ArrivalTrace {
        ArrivalTrace::generate(
            tasks,
            &ArrivalConfig {
                horizon: Duration::from_millis(horizon_ms),
                poisson_factor: 2.0,
                phasing: Phasing::Simultaneous,
            },
            1,
        )
    }

    #[test]
    fn single_periodic_task_all_jobs_released() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 1_000);
        let cfg = SimConfig::ideal("T_N_N".parse().unwrap());
        let report = simulate(&tasks, &trace, &cfg).unwrap();
        assert_eq!(report.ratio.ratio(), 1.0);
        assert_eq!(report.jobs_completed, 10);
        assert_eq!(report.deadline_misses, 0);
        // 10 jobs × 10 ms on P0.
        assert_eq!(report.cpu_busy[0], Duration::from_millis(100));
    }

    #[test]
    fn per_task_uses_one_admission_test() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 1_000);
        let cfg = SimConfig::ideal("T_N_N".parse().unwrap());
        let report = simulate(&tasks, &trace, &cfg).unwrap();
        assert_eq!(report.ac.tested, 1, "only the first job is tested");
        assert_eq!(report.ac.admitted, 1);
    }

    #[test]
    fn per_job_tests_every_job() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 1_000);
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        let report = simulate(&tasks, &trace, &cfg).unwrap();
        assert_eq!(report.ac.tested, 10);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 100);
        let cfg = SimConfig::ideal("T_J_N".parse().unwrap());
        assert!(matches!(simulate(&tasks, &trace, &cfg), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn unknown_task_in_trace_is_rejected() {
        let tasks = one_task_set();
        let other = {
            let t = TaskBuilder::periodic(TaskId(9), Duration::from_millis(100))
                .subtask(Duration::from_millis(1), ProcessorId(0), [])
                .build()
                .unwrap();
            TaskSet::from_tasks([t]).unwrap()
        };
        let trace = trace_for(&other, 200);
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        assert_eq!(
            simulate(&tasks, &trace, &cfg).unwrap_err(),
            SimError::UnknownTask { task: TaskId(9) }
        );
    }

    #[test]
    fn overloaded_processor_skips_jobs_per_job_ac() {
        // Two identical heavy tasks on one processor: each alone passes
        // (f(0.45) < 1) but together f(0.9) > 1, so one is locked out.
        let t0 = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let t1 = TaskBuilder::periodic(TaskId(1), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let tasks = TaskSet::from_tasks([t0, t1]).unwrap();
        let trace = trace_for(&tasks, 1_000);
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        let report = simulate(&tasks, &trace, &cfg).unwrap();
        assert!(report.ratio.ratio() < 1.0);
        assert!(report.ac.rejected > 0);
        assert_eq!(report.deadline_misses, 0, "admitted jobs still meet deadlines");
    }

    #[test]
    fn idle_resetting_admits_more() {
        // With period = deadline and *simultaneous* phases, deadline expiry
        // alone frees utilization exactly at each arrival and IR is a
        // no-op. Staggered phases create mid-period arrivals that only the
        // resetting rule can admit — the very effect of §4.3.
        let mk = |id: u32, proc: u16| {
            TaskBuilder::periodic(TaskId(id), Duration::from_millis(100))
                .subtask(Duration::from_millis(30), ProcessorId(proc), [])
                .build()
                .unwrap()
        };
        let tasks = TaskSet::from_tasks([mk(0, 0), mk(1, 0), mk(2, 0)]).unwrap();
        // Whether the drawn phases stagger depends on the RNG stream, so
        // no single seed is load-bearing: over several seeds IR must never
        // lose and must strictly win on some (seeds whose phases happen to
        // align make IR a no-op, which is fine).
        let mut strict_wins = 0;
        for seed in 0..8 {
            let trace = ArrivalTrace::generate(
                &tasks,
                &ArrivalConfig {
                    horizon: Duration::from_millis(2_000),
                    poisson_factor: 2.0,
                    phasing: Phasing::RandomPhase,
                },
                seed,
            );
            let no_ir =
                simulate(&tasks, &trace, &SimConfig::ideal("J_N_N".parse().unwrap())).unwrap();
            let with_ir =
                simulate(&tasks, &trace, &SimConfig::ideal("J_J_N".parse().unwrap())).unwrap();
            assert!(
                with_ir.ratio.ratio() >= no_ir.ratio.ratio(),
                "seed {seed}: IR per job ({}) must never admit less than no IR ({})",
                with_ir.ratio.ratio(),
                no_ir.ratio.ratio()
            );
            if with_ir.ratio.ratio() > no_ir.ratio.ratio() {
                strict_wins += 1;
            }
            assert!(with_ir.ir_reports > 0, "seed {seed}: resetters must report");
            assert_eq!(with_ir.deadline_misses, 0, "seed {seed}");
        }
        assert!(strict_wins >= 2, "IR must strictly win on staggered phases: {strict_wins}/8");
    }

    #[test]
    fn load_balancing_uses_replicas() {
        // Two heavy replicated tasks: without LB they fight over P0;
        // with LB one moves to P1.
        let mk = |id: u32| {
            TaskBuilder::periodic(TaskId(id), Duration::from_millis(100))
                .subtask(Duration::from_millis(45), ProcessorId(0), [ProcessorId(1)])
                .build()
                .unwrap()
        };
        let tasks = TaskSet::from_tasks([mk(0), mk(1)]).unwrap();
        let trace = trace_for(&tasks, 1_000);
        let no_lb = simulate(&tasks, &trace, &SimConfig::ideal("J_N_N".parse().unwrap())).unwrap();
        let lb = simulate(&tasks, &trace, &SimConfig::ideal("J_N_T".parse().unwrap())).unwrap();
        assert!(lb.ratio.ratio() > no_lb.ratio.ratio());
        assert!(lb.reallocations > 0);
        assert!(lb.cpu_busy[1] > Duration::ZERO, "P1 actually executed work");
    }

    #[test]
    fn distributed_rejects_unsupported_configs() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 200);
        for bad in ["T_N_N", "J_J_N", "J_T_T"] {
            let cfg = SimConfig::ideal(bad.parse().unwrap());
            assert!(
                matches!(
                    super::simulate_distributed(&tasks, &trace, &cfg),
                    Err(SimError::UnsupportedDistributed { .. })
                ),
                "combo {bad}"
            );
        }
    }

    #[test]
    fn distributed_matches_centralized_on_one_processor() {
        // With a single application processor there are no peers to race:
        // under zero overheads both architectures admit identically.
        let t0 = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let t1 = TaskBuilder::periodic(TaskId(1), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let tasks = TaskSet::from_tasks([t0, t1]).unwrap();
        let trace = trace_for(&tasks, 1_000);
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        let central = simulate(&tasks, &trace, &cfg).unwrap();
        let distributed = super::simulate_distributed(&tasks, &trace, &cfg).unwrap();
        assert_eq!(central.ratio, distributed.ratio);
        assert_eq!(central.deadline_misses, distributed.deadline_misses);
    }

    #[test]
    fn distributed_decides_without_manager_round_trip() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 1_000);
        // Full overheads: centralized pays ~1 ms of admission path per job;
        // distributed releases locally after te_release only.
        let cfg = SimConfig::new("J_N_N".parse().unwrap());
        let central = simulate(&tasks, &trace, &cfg).unwrap();
        let distributed = super::simulate_distributed(&tasks, &trace, &cfg).unwrap();
        assert!(
            distributed.response.mean() + Duration::from_micros(500) < central.response.mean(),
            "distributed {} vs centralized {}",
            distributed.response.mean(),
            central.response.mean()
        );
        assert_eq!(distributed.ir_reports, 0);
    }

    #[test]
    fn job_records_match_aggregates() {
        let t0 = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let t1 = TaskBuilder::periodic(TaskId(1), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let tasks = TaskSet::from_tasks([t0, t1]).unwrap();
        let trace = trace_for(&tasks, 1_000);
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        let (report, records) = super::simulate_recorded(&tasks, &trace, &cfg).unwrap();
        assert_eq!(records.len(), trace.len());
        let released = records.iter().filter(|r| r.released).count() as u64;
        assert_eq!(released, report.ratio.released_jobs());
        let completed = records.iter().filter(|r| r.completed.is_some()).count() as u64;
        assert_eq!(completed, report.jobs_completed);
        let missed = records.iter().filter(|r| r.missed).count() as u64;
        assert_eq!(missed, report.deadline_misses);
        // Rejected jobs never complete.
        for r in &records {
            if !r.released {
                assert!(r.completed.is_none());
            }
        }
        // Recording does not change the aggregate outcome.
        let plain = simulate(&tasks, &trace, &cfg).unwrap();
        assert_eq!(plain, report);
    }

    #[test]
    fn mode_switch_changes_admission_semantics_mid_run() {
        // 10 arrivals over 1 s; switch J -> T at 450 ms: jobs before the
        // switch are tested per job, the first job after it seeds a
        // reservation (reseed covers the live entry), later jobs pass
        // through untested.
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 1_000);
        let schedule = ModeSchedule::new()
            .then_at(Time::ZERO + Duration::from_millis(450), "T_N_N".parse().unwrap());
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        let report = simulate_with_schedule(&tasks, &trace, &cfg, &schedule).unwrap();
        assert_eq!(report.mode_switches, 1);
        assert_eq!(report.mode_changes.len(), 1);
        let handover = &report.mode_changes[0];
        assert_eq!(handover.to.label(), "T_N_N");
        assert_eq!(handover.reservations_reseeded, 1, "live periodic entry reseeded");
        // 5 per-job tests before the switch; the reseed spares all later
        // jobs a test — the first post-switch job passes through at the
        // AC (caching the TE decision), the rest release TE-locally.
        assert_eq!(report.ac.tested, 5, "tests stop at the switch");
        assert_eq!(report.ac.pass_throughs, 1);
        assert_eq!(report.jobs_completed, 10, "no job lost across the switch");
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn empty_schedule_matches_static_run_exactly() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 2_000);
        let cfg = SimConfig::new("J_J_T".parse().unwrap());
        let static_run = simulate(&tasks, &trace, &cfg).unwrap();
        let scheduled = simulate_with_schedule(&tasks, &trace, &cfg, &ModeSchedule::new()).unwrap();
        assert_eq!(static_run, scheduled);
    }

    #[test]
    fn invalid_schedule_is_rejected_before_the_run() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 200);
        let schedule = ModeSchedule::new()
            .then_at(Time::ZERO + Duration::from_millis(50), "T_J_N".parse().unwrap());
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        assert!(matches!(
            simulate_with_schedule(&tasks, &trace, &cfg, &schedule),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn scheduled_runs_are_deterministic_and_recordable() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 2_000);
        let cfg = SimConfig::new("J_N_N".parse().unwrap());
        let schedule = ModeSchedule::new()
            .then_at(Time::ZERO + Duration::from_millis(700), "T_T_T".parse().unwrap())
            .then_at(Time::ZERO + Duration::from_millis(1_400), "J_J_J".parse().unwrap());
        let (a, records) =
            simulate_recorded_with_schedule(&tasks, &trace, &cfg, &schedule).unwrap();
        let b = simulate_with_schedule(&tasks, &trace, &cfg, &schedule).unwrap();
        assert_eq!(a, b, "schedule runs are replayable");
        assert_eq!(a.mode_switches, 2);
        assert_eq!(records.len(), trace.len());
        let released = records.iter().filter(|r| r.released).count() as u64;
        assert_eq!(released, a.ratio.released_jobs());
    }

    fn inert_policy() -> GovernorPolicy {
        use rtcm_core::govern::{GovernorRule, Metric, Trigger};
        GovernorPolicy::new().rule(GovernorRule::new(
            "impossible",
            Metric::AcceptedRatio,
            Trigger::Below(-1.0),
            1,
            "T_T_T".parse().unwrap(),
        ))
    }

    #[test]
    fn governed_run_with_inert_policy_matches_plain_run() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 2_000);
        let cfg = SimConfig::new("J_J_T".parse().unwrap());
        let plain = simulate(&tasks, &trace, &cfg).unwrap();
        let (governed, gov_trace) =
            simulate_governed(&tasks, &trace, &cfg, &inert_policy(), Duration::from_millis(100))
                .unwrap();
        assert!(governed.governor_windows > 10, "the sensing loop ran");
        assert_eq!(governed.governor_swaps, 0);
        assert!(gov_trace.switches.is_empty());
        assert_eq!(gov_trace.windows.len() as u64, governed.governor_windows);
        // Sensing must be a pure observer: everything except the
        // governor's own counters (and the end instant, which the tail
        // sensing tick can extend) matches the ungoverned run exactly.
        let mut normalized = governed.clone();
        normalized.governor_windows = 0;
        normalized.end = plain.end;
        assert_eq!(normalized, plain);
    }

    #[test]
    fn invalid_governor_policy_is_rejected_before_the_run() {
        use rtcm_core::govern::{GovernorRule, Metric, Trigger};
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 200);
        let bad_target = ServiceConfig::new(
            rtcm_core::strategy::AcStrategy::PerTask,
            rtcm_core::strategy::IrStrategy::PerJob,
            rtcm_core::strategy::LbStrategy::None,
        );
        let policy = GovernorPolicy::new().rule(GovernorRule::new(
            "bad",
            Metric::AcceptedRatio,
            Trigger::Below(0.5),
            1,
            bad_target,
        ));
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        assert!(matches!(
            simulate_governed(&tasks, &trace, &cfg, &policy, Duration::from_millis(100)),
            Err(SimError::InvalidPolicy(_))
        ));
    }

    /// The incremental window sensor against the brute-force oracle: every
    /// window's arrived/released figures recomputed by a full rescan of
    /// the per-job records must match the O(1) counter deltas exactly —
    /// the same differential discipline the incremental admission path is
    /// held to.
    #[test]
    fn governed_window_sensing_matches_brute_rescan_oracle() {
        let mk = |id: u32, proc: u16| {
            TaskBuilder::aperiodic(TaskId(id))
                .deadline(Duration::from_millis(100))
                .subtask(Duration::from_millis(40), ProcessorId(proc), [])
                .build()
                .unwrap()
        };
        let tasks = TaskSet::from_tasks([mk(0, 0), mk(1, 0), mk(2, 1)]).unwrap();
        // Heavy aperiodic pressure: plenty of accepts *and* rejects.
        let trace = ArrivalTrace::generate(
            &tasks,
            &ArrivalConfig {
                horizon: Duration::from_secs(5),
                poisson_factor: 0.5,
                phasing: Phasing::Simultaneous,
            },
            3,
        );
        // Ideal overheads: decisions land at the arrival instant, so
        // bucketing records by arrival time is an exact oracle. The odd
        // window length keeps tick boundaries off any arrival instant.
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        let window = Duration::from_millis(333);
        let (report, gov_trace, records) =
            simulate_governed_recorded(&tasks, &trace, &cfg, &inert_policy(), window).unwrap();
        assert!(gov_trace.windows.len() > 10);
        assert_eq!(report.governor_windows as usize, gov_trace.windows.len());
        assert!(report.ac.rejected > 0, "the fixture must exercise rejections");

        let mut prev = Time::ZERO;
        for (end, metrics) in &gov_trace.windows {
            let mut arrived_jobs = 0u64;
            let mut arrived_u = 0.0;
            let mut released_u = 0.0;
            for r in &records {
                if r.arrival > prev && r.arrival <= *end {
                    arrived_jobs += 1;
                    arrived_u += r.utilization;
                    if r.released {
                        released_u += r.utilization;
                    }
                }
            }
            assert_eq!(metrics.arrived_jobs, arrived_jobs, "window ending {end}");
            assert!(
                (metrics.arrived_utilization - arrived_u).abs() < 1e-9,
                "window ending {end}: incremental {} vs rescan {arrived_u}",
                metrics.arrived_utilization
            );
            assert!(
                (metrics.released_utilization - released_u).abs() < 1e-9,
                "window ending {end}: incremental {} vs rescan {released_u}",
                metrics.released_utilization
            );
            prev = *end;
        }
        // Window deltas telescope back to the run totals.
        let total: f64 = gov_trace.windows.iter().map(|(_, m)| m.arrived_utilization).sum();
        assert!((total - report.ratio.arrived_utilization()).abs() < 1e-9);
    }

    #[test]
    fn governor_recovers_a_burst_without_a_schedule() {
        use rtcm_workload::BurstScenario;
        // A healthy (0.3-target) baseline: pre-burst windows accept well
        // above the collapse threshold, so the defense provably reacts to
        // the burst itself.
        let scenario = BurstScenario {
            horizon: Duration::from_secs(60),
            burst_start: Duration::from_secs(20),
            burst_duration: Duration::from_secs(20),
            intensity: 10.0,
            workload: rtcm_workload::RandomWorkload {
                target_utilization: 0.3,
                ..Default::default()
            },
            ..BurstScenario::default()
        };
        let (tasks, trace) = scenario.generate(7).unwrap();
        let baseline: ServiceConfig = "J_N_N".parse().unwrap();
        let defensive: ServiceConfig = "T_T_T".parse().unwrap();
        let cfg = SimConfig::new(baseline);
        let policy = GovernorPolicy::defensive_recovery(baseline, defensive);

        let (_, static_records) = simulate_recorded(&tasks, &trace, &cfg).unwrap();
        let (governed, gov_trace, governed_records) =
            simulate_governed_recorded(&tasks, &trace, &cfg, &policy, Duration::from_secs(2))
                .unwrap();

        assert!(governed.governor_swaps >= 1, "the collapse must trip the defense");
        let switch = &gov_trace.switches[0];
        assert_eq!(switch.rule, "collapse-defense");
        assert_eq!(switch.to, defensive);
        assert!(
            switch.at >= Time::ZERO + scenario.burst_start,
            "the defense reacts to the burst, not the baseline load"
        );

        // Recovery: from the switch to the burst end, the governed run
        // must accept more utilization than the static baseline.
        let lo = switch.at;
        let hi = Time::ZERO + scenario.burst_end();
        let ratio = |records: &[JobRecord]| {
            let mut arrived = 0.0;
            let mut released = 0.0;
            for r in records.iter().filter(|r| r.arrival >= lo && r.arrival < hi) {
                arrived += r.utilization;
                if r.released {
                    released += r.utilization;
                }
            }
            if arrived > 0.0 {
                released / arrived
            } else {
                1.0
            }
        };
        let static_ratio = ratio(&static_records);
        let governed_ratio = ratio(&governed_records);
        assert!(
            governed_ratio > static_ratio,
            "governed {governed_ratio:.3} must beat static {static_ratio:.3} after the switch"
        );
        assert_eq!(governed.deadline_misses, 0, "recovery never sacrifices guarantees");
    }

    /// Satellite: bounded swaps under an oscillating load trace — the
    /// hysteresis + cooldown must keep the governed system from flapping.
    #[test]
    fn governor_hysteresis_bounds_swaps_under_oscillating_load() {
        use rtcm_core::govern::{GovernorRule, Metric, Trigger};
        use rtcm_workload::Arrival;

        // Utilization 0.5 per job: schedulable alone (f(0.5) = 0.75), but
        // any two concurrent jobs break the bound — a flood collapses the
        // ratio, a calm trickle accepts everything.
        let heavy = TaskBuilder::aperiodic(TaskId(0))
            .deadline(Duration::from_millis(100))
            .subtask(Duration::from_millis(50), ProcessorId(0), [])
            .build()
            .unwrap();
        let tasks = TaskSet::from_tasks([heavy]).unwrap();

        // Alternating seconds of flood (collapse) and calm (recovery),
        // phase-shifted off the window grid.
        let mut arrivals = Vec::new();
        let mut seq = 0;
        for second in 0..12u64 {
            let flood = second % 2 == 0;
            let step_ms = if flood { 10 } else { 450 };
            let mut t = second * 1_000 + 5;
            while t < (second + 1) * 1_000 {
                arrivals.push(Arrival {
                    time: Time::ZERO + Duration::from_millis(t),
                    task: TaskId(0),
                    seq,
                });
                seq += 1;
                t += step_ms;
            }
        }
        let trace = ArrivalTrace::from_arrivals(arrivals);

        let policy = GovernorPolicy::new()
            .rule(GovernorRule::new(
                "defend",
                Metric::AcceptedRatio,
                Trigger::Below(0.5),
                2,
                "J_J_N".parse().unwrap(),
            ))
            .rule(GovernorRule::new(
                "relax",
                Metric::AcceptedRatio,
                Trigger::Above(0.9),
                2,
                "J_N_N".parse().unwrap(),
            ))
            .cooldown(3);
        let cfg = SimConfig::ideal("J_N_N".parse().unwrap());
        let window = Duration::from_millis(250);
        let (report, gov_trace) = simulate_governed(&tasks, &trace, &cfg, &policy, window).unwrap();

        let windows = report.governor_windows;
        // Streaks keep accumulating during cooldown, so the minimum gap
        // between swaps is cooldown + 1 windows.
        let bound = windows / (3 + 1) + 1;
        assert!(
            report.governor_swaps <= bound,
            "{} swaps in {windows} windows exceeds the anti-flapping bound {bound}",
            report.governor_swaps
        );
        assert!(report.governor_swaps >= 2, "sustained blocks must still adapt");
        assert_eq!(report.governor_swaps as usize, gov_trace.switches.len());
        // Deterministic replay.
        let (again, _) = simulate_governed(&tasks, &trace, &cfg, &policy, window).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn deterministic_given_seed() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 2_000);
        let cfg = SimConfig::new("J_J_J".parse().unwrap());
        let a = simulate(&tasks, &trace, &cfg).unwrap();
        let b = simulate(&tasks, &trace, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn execution_spans_account_for_every_cycle() {
        // Two tasks with different priorities on one CPU: the trace must
        // show preemption, spans must not overlap, and per-subjob span time
        // must equal the declared execution time.
        let urgent = TaskBuilder::periodic(TaskId(0), Duration::from_millis(50))
            .subtask(Duration::from_millis(5), ProcessorId(0), [])
            .build()
            .unwrap();
        let slow = TaskBuilder::periodic(TaskId(1), Duration::from_millis(200))
            .subtask(Duration::from_millis(60), ProcessorId(0), [])
            .build()
            .unwrap();
        let tasks = TaskSet::from_tasks([urgent, slow]).unwrap();
        let trace = trace_for(&tasks, 400);
        let (report, spans) =
            super::simulate_traced(&tasks, &trace, &SimConfig::ideal("J_N_N".parse().unwrap()))
                .unwrap();
        assert!(!spans.is_empty());
        // Non-overlap on the single CPU.
        let mut sorted = spans.clone();
        sorted.sort_by_key(|s| s.start);
        for pair in sorted.windows(2) {
            assert!(pair[0].end <= pair[1].start, "{:?} overlaps {:?}", pair[0], pair[1]);
        }
        // The slow task must have been preempted at least once.
        assert!(
            spans.iter().any(|s| s.job.task == TaskId(1) && !s.completed),
            "expected a preempted segment of the slow task"
        );
        // Per-subjob execution adds up exactly.
        use std::collections::HashMap;
        let mut per_job: HashMap<(rtcm_core::task::JobId, usize), Duration> = HashMap::new();
        for s in &spans {
            *per_job.entry((s.job, s.subtask)).or_insert(Duration::ZERO) +=
                s.end.elapsed_since(s.start);
        }
        for ((job, subtask), total) in per_job {
            let expected = tasks.get(job.task).unwrap().subtasks()[subtask].execution_time;
            assert_eq!(total, expected, "job {job} stage {subtask}");
        }
        // Total span time equals reported busy time.
        let span_total: Duration = spans.iter().map(|s| s.end.elapsed_since(s.start)).sum();
        assert_eq!(span_total, report.cpu_busy[0]);
    }

    #[test]
    fn skip_runs_are_tracked() {
        // Two heavy tasks on one CPU: the loser skips in runs.
        let t0 = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let t1 = TaskBuilder::periodic(TaskId(1), Duration::from_millis(100))
            .subtask(Duration::from_millis(45), ProcessorId(0), [])
            .build()
            .unwrap();
        let tasks = TaskSet::from_tasks([t0, t1]).unwrap();
        let trace = trace_for(&tasks, 1_000);
        let report = simulate(&tasks, &trace, &SimConfig::ideal("J_N_N".parse().unwrap())).unwrap();
        assert!(report.max_consecutive_skips > 0);
        assert!(!report.skip_runs.is_empty());
        // A drained single-task system skips nothing.
        let solo =
            TaskSet::from_tasks([TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
                .subtask(Duration::from_millis(10), ProcessorId(0), [])
                .build()
                .unwrap()])
            .unwrap();
        let trace = trace_for(&solo, 1_000);
        let report = simulate(&solo, &trace, &SimConfig::ideal("J_N_N".parse().unwrap())).unwrap();
        assert_eq!(report.max_consecutive_skips, 0);
        assert!(report.skip_runs.is_empty());
    }

    #[test]
    fn endurance_hour_long_horizon_stays_bounded() {
        // A full virtual hour: the current set and ledger must stay
        // bounded (expiry works), determinism must hold, and nothing
        // leaks into pathological slowdowns.
        let mk = |id: u32, proc: u16| {
            TaskBuilder::periodic(TaskId(id), Duration::from_millis(250))
                .subtask(Duration::from_millis(40), ProcessorId(proc), [])
                .build()
                .unwrap()
        };
        let tasks = TaskSet::from_tasks([mk(0, 0), mk(1, 1), mk(2, 0)]).unwrap();
        let trace = ArrivalTrace::generate(
            &tasks,
            &ArrivalConfig {
                horizon: Duration::from_secs(3_600),
                poisson_factor: 2.0,
                phasing: Phasing::RandomPhase,
            },
            1,
        );
        let cfg = SimConfig::new("J_J_T".parse().unwrap());
        let report = simulate(&tasks, &trace, &cfg).unwrap();
        // 3 tasks × 14400 periods each ≈ 43200 arrivals.
        assert!(report.ratio.arrived_jobs() > 40_000);
        assert_eq!(report.deadline_misses, 0);
        assert!(report.ratio.ratio() > 0.5);
        let again = simulate(&tasks, &trace, &cfg).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn scale_many_processors_and_tasks() {
        // 40 processors, 80 tasks: a deployment an order of magnitude
        // beyond the paper's testbed still simulates correctly.
        let mut tasks = Vec::new();
        for i in 0..80u32 {
            let p = (i % 40) as u16;
            tasks.push(
                TaskBuilder::periodic(TaskId(i), Duration::from_millis(200 + 10 * u64::from(i)))
                    .subtask(Duration::from_millis(10), ProcessorId(p), [ProcessorId((p + 1) % 40)])
                    .subtask(Duration::from_millis(5), ProcessorId((p + 7) % 40), [])
                    .build()
                    .unwrap(),
            );
        }
        let tasks = TaskSet::from_tasks(tasks).unwrap();
        let trace = trace_for(&tasks, 10_000);
        let report = simulate(&tasks, &trace, &SimConfig::new("J_J_J".parse().unwrap())).unwrap();
        assert!(report.ratio.ratio() > 0.5, "ratio {}", report.ratio.ratio());
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.cpu_busy.len(), 40);
    }

    #[test]
    fn overheads_delay_but_do_not_starve() {
        let tasks = one_task_set();
        let trace = trace_for(&tasks, 1_000);
        let ideal = simulate(&tasks, &trace, &SimConfig::ideal("J_N_N".parse().unwrap())).unwrap();
        let real = simulate(&tasks, &trace, &SimConfig::new("J_N_N".parse().unwrap())).unwrap();
        assert_eq!(real.jobs_completed, ideal.jobs_completed);
        assert!(real.response.mean() > ideal.response.mean());
        // The AC round-trip adds ≈ 1 ms to every response.
        let delta = real.response.mean() - ideal.response.mean();
        assert!(
            delta > Duration::from_micros(700) && delta < Duration::from_micros(2_000),
            "AC path delta {delta}"
        );
    }
}
