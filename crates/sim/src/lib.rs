//! # rtcm-sim
//!
//! Deterministic discrete-event simulation substrate for **rtcm**: the
//! substitute for the paper's six-machine KURT-Linux testbed.
//!
//! The simulator executes the full middleware control loop — task
//! effectors, the centralized task manager (admission control + load
//! balancing as a FIFO server), idle resetters and preemptive EDMS subtask
//! execution — in virtual time, with a configurable [`overhead`] model for
//! communication delays and service costs (calibrated by default to the
//! paper's Figure 8 measurements).
//!
//! Because time is virtual and every random draw is seeded, the §7.1/§7.2
//! experiments are exactly replayable: the same task sets and arrival
//! traces are run across all 15 strategy combinations, exactly like the
//! paper's methodology.
//!
//! # Examples
//!
//! ```
//! use rtcm_sim::{simulate, SimConfig};
//! use rtcm_workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};
//!
//! let tasks = RandomWorkload::default().generate(7)?;
//! let trace = ArrivalTrace::generate(&tasks, &ArrivalConfig::default(), 7);
//!
//! let report = simulate(&tasks, &trace, &SimConfig::new("J_J_J".parse()?))?;
//! assert!(report.ratio.ratio() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod fed;
pub mod overhead;
pub mod simulation;

pub use fed::campaign::{Campaign, CampaignOutcome, CampaignSummary};
pub use fed::fault::{FaultAction, FaultEvent, FaultSchedule};
pub use fed::federation::{
    EpochOutcome, EpochRecord, FedError, FedHostSpec, FedOptions, FedReport, Federation, HostReport,
};
pub use overhead::{DelayModel, OverheadModel};
pub use simulation::{
    simulate, simulate_distributed, simulate_governed, simulate_governed_recorded,
    simulate_recorded, simulate_recorded_with_schedule, simulate_traced, simulate_with_schedule,
    ExecSpan, GovernedSwitch, GovernorTrace, JobRecord, SimConfig, SimError, SimReport,
};
