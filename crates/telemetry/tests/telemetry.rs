//! Integration tests for the telemetry plane: the golden exposition
//! format (pinned byte-for-byte — scrapers parse this, so accidental
//! format drift is a breaking change) and histogram quantile accuracy
//! against exact reference distributions.

use rtcm_telemetry::{splitmix64, Histogram, Registry};

// ---------------------------------------------------------------------
// Golden exposition format
// ---------------------------------------------------------------------

#[test]
fn golden_exposition_format() {
    let reg = Registry::new();
    reg.set_build_info(vec![
        ("version".to_string(), "0.1.0".to_string()),
        ("config".to_string(), "J_N_N".to_string()),
    ]);
    let jobs = reg.counter("rtcm_jobs_total", "Jobs arrived.");
    let slack = reg.gauge("rtcm_slack", "AUB headroom.");
    let delay = reg.histogram("rtcm_delay_ns", "Admission delay.");
    jobs.add(3);
    slack.set(0.5);
    delay.record(0);
    delay.record(1);
    delay.record(5);

    let golden = "\
# HELP rtcm_build_info Build and configuration metadata.
# TYPE rtcm_build_info gauge
rtcm_build_info{version=\"0.1.0\",config=\"J_N_N\"} 1
# HELP rtcm_jobs_total Jobs arrived.
# TYPE rtcm_jobs_total counter
rtcm_jobs_total 3
# HELP rtcm_slack AUB headroom.
# TYPE rtcm_slack gauge
rtcm_slack 0.5
# HELP rtcm_delay_ns Admission delay.
# TYPE rtcm_delay_ns histogram
rtcm_delay_ns_bucket{le=\"0\"} 1
rtcm_delay_ns_bucket{le=\"1\"} 2
rtcm_delay_ns_bucket{le=\"7\"} 3
rtcm_delay_ns_bucket{le=\"+Inf\"} 3
rtcm_delay_ns_sum 6
rtcm_delay_ns_count 3
";
    assert_eq!(reg.render_text(), golden);
}

#[test]
fn exposition_is_stable_across_renders() {
    let reg = Registry::new();
    let c = reg.counter("rtcm_a_total", "A.");
    let _g = reg.gauge("rtcm_b", "B.");
    let first = reg.render_text();
    assert_eq!(first, reg.render_text(), "rendering is pure");
    c.inc();
    assert_ne!(first, reg.render_text(), "rendering reflects live values");
}

// ---------------------------------------------------------------------
// Quantile accuracy vs exact reference distributions
// ---------------------------------------------------------------------

/// Exact quantile of a sorted reference sample at the same rank the
/// histogram targets (`⌈q·n⌉`, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the histogram estimate is within the log2-bucket guarantee of
/// the exact value: both lie in the same power-of-two bucket, so the
/// ratio is bounded by 2 (and the estimate never leaves `[min, max]`).
fn assert_within_bucket_resolution(est: u64, exact: u64, what: &str) {
    let (lo, hi) = (exact / 2, exact.saturating_mul(2).max(1));
    assert!(
        (lo..=hi).contains(&est),
        "{what}: estimate {est} outside [{lo}, {hi}] around exact {exact}"
    );
}

fn check_distribution(samples: &[u64], what: &str) {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let snap = h.snapshot();
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    assert_eq!(snap.count, samples.len() as u64);
    assert_eq!(snap.min, sorted[0], "{what}: min is exact");
    assert_eq!(snap.max, *sorted.last().unwrap(), "{what}: max is exact");
    assert_eq!(snap.sum, samples.iter().sum::<u64>(), "{what}: sum is exact");
    for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
        let est = snap.quantile(q);
        let exact = exact_quantile(&sorted, q);
        assert_within_bucket_resolution(est, exact, &format!("{what} {label}"));
        assert!(
            (snap.min..=snap.max).contains(&est),
            "{what} {label}: estimate outside observed range"
        );
    }
}

#[test]
fn quantiles_on_exhaustive_range() {
    // Every value 1..=4096 exactly once: p50 = 2048, p90 = 3687, ...
    let samples: Vec<u64> = (1..=4096).collect();
    check_distribution(&samples, "exhaustive 1..=4096");
}

#[test]
fn quantiles_on_constant_distribution_are_exact() {
    let h = Histogram::new();
    for _ in 0..1000 {
        h.record(777);
    }
    let snap = h.snapshot();
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(snap.quantile(q), 777, "clamping to [min, max] makes constants exact");
    }
}

#[test]
fn quantiles_on_bimodal_distribution() {
    // 90% fast ops at ~100 ns, 10% slow at ~1 ms: the shape that makes
    // mean-only reporting lie and histograms earn their keep.
    let mut samples = vec![100u64; 900];
    samples.extend(std::iter::repeat_n(1_000_000, 100));
    check_distribution(&samples, "bimodal 100/1e6");
}

#[test]
fn quantiles_on_pseudorandom_heavy_tail() {
    // Deterministic splitmix64 stream shaped into a heavy tail: mostly
    // sub-10µs with excursions to ~10ms, like real admission latencies.
    let samples: Vec<u64> = (0..10_000u64)
        .map(|i| {
            let r = splitmix64(i ^ 0x9E37_79B9_7F4A_7C15);
            let base = 200 + (r % 8_000);
            if r % 100 < 2 {
                base * 1_000 // the 2% tail
            } else {
                base
            }
        })
        .collect();
    check_distribution(&samples, "heavy tail");
}

#[test]
fn quantile_monotonicity() {
    let samples: Vec<u64> = (0..5_000u64).map(|i| splitmix64(i) % 1_000_000).collect();
    let h = Histogram::new();
    for &v in &samples {
        h.record(v);
    }
    let snap = h.snapshot();
    let mut last = 0;
    for step in 0..=100 {
        let q = f64::from(step) / 100.0;
        let est = snap.quantile(q);
        assert!(est >= last, "quantile({q}) = {est} went backwards from {last}");
        last = est;
    }
}
