//! Lock-free metric primitives: counters, gauges and log2-bucketed latency
//! histograms, plus the registry that names them for exposition.
//!
//! Everything here is designed for the *recording* side to be a handful of
//! relaxed atomic operations — no mutex, no allocation — so runtime hot
//! paths (per-job, per-event, per-wakeup) can record unconditionally. The
//! *reading* side (scrapes, report snapshots) pays the loads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` (for
/// `i ≥ 1`) holds values in `[2^(i-1), 2^i - 1]`. 64 buckets cover the
/// full `u64` nanosecond range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter. `inc`/`add` are single relaxed
/// atomic adds.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge (also usable as a float accumulator): an
/// `AtomicU64` holding `f64` bits. `set` is one store; `add` is a CAS
/// loop, uncontended in practice.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at 0.0.
    #[must_use]
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Accumulates `v` (compare-and-swap loop).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros` so that
/// bucket `i` spans `[2^(i-1), 2^i - 1]`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`le` label in the exposition).
#[inline]
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
#[must_use]
fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A fixed-size log2-bucketed latency histogram.
///
/// `record` is two relaxed atomic adds (bucket + exact sum) plus two loads
/// that turn into `fetch_min`/`fetch_max` only when a new extreme is seen —
/// no mutex, no allocation, ever. Count is derived from the buckets at
/// snapshot time; the sum is exact, so the mean derived from a snapshot is
/// exact too, and `min`/`max` are exact. Quantiles are exact to within the
/// resolution of the containing bucket (< 2× relative error by
/// construction, linear interpolation inside the bucket).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample (nanoseconds, by convention).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // Extremes move rarely: pay the RMW only when the loaded bound is
        // actually beaten, so the steady state is two plain loads.
        if value < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(value, Ordering::Relaxed);
        }
        if value > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// relaxed; recording is concurrent, so totals may trail by the odd
    /// in-flight sample — fine for observability).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Fills `out` with a snapshot, reusing its bucket storage. Scrape
    /// loops render dozens of histograms per pass — one pooled snapshot
    /// makes the whole pass allocation-free after the first histogram.
    pub fn snapshot_into(&self, out: &mut HistogramSnapshot) {
        out.buckets.clear();
        out.buckets.extend(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)));
        out.count = out.buckets.iter().sum();
        out.sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        out.min = if out.count == 0 { 0 } else { min };
        out.max = self.max.load(Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Exact mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate for `q ∈ [0, 1]`: locates the bucket containing
    /// the rank-`⌈q·count⌉` sample and interpolates linearly inside it,
    /// clamped to the exact observed `[min, max]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lower = bucket_lower_bound(i).max(self.min);
                let upper = bucket_upper_bound(i).min(self.max);
                let within = (rank - cum - 1) as f64 / c as f64;
                let est = lower as f64 + within * (upper.saturating_sub(lower)) as f64;
                return est.round() as u64;
            }
            cum += c;
        }
        self.max
    }
}

/// What kind of metric a registry entry is (drives the `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Log2 latency histogram.
    Histogram,
}

/// One named metric and its live handle.
pub(crate) enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

pub(crate) struct Entry {
    pub name: String,
    pub help: String,
    pub handle: Handle,
}

/// A registry of named metrics.
///
/// Registration (startup) takes a mutex and allocates; recording goes
/// through the returned `Arc` handles and never touches the registry
/// again. Rendering walks the entries in registration order, which makes
/// the exposition stable — the golden test pins it.
#[derive(Default)]
pub struct Registry {
    pub(crate) entries: Mutex<Vec<Entry>>,
    pub(crate) build_info: Mutex<Vec<(String, String)>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().expect("registry poisoned");
        f.debug_struct("Registry").field("metrics", &entries.len()).finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a counter and returns its recording handle.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.entries.lock().expect("registry poisoned").push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            handle: Handle::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers a gauge and returns its recording handle.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.entries.lock().expect("registry poisoned").push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            handle: Handle::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers a histogram and returns its recording handle.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.entries.lock().expect("registry poisoned").push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            handle: Handle::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Sets the labels rendered on the `rtcm_build_info` gauge (version,
    /// service config, host id, ...).
    pub fn set_build_info(&self, labels: Vec<(String, String)>) {
        *self.build_info.lock().expect("registry poisoned") = labels;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 1..62 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_exact_parts() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1060);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 265.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_into_reuses_storage_and_matches_snapshot() {
        let h = Histogram::new();
        for v in [5u64, 9, 500] {
            h.record(v);
        }
        let mut pooled = HistogramSnapshot::default();
        h.snapshot_into(&mut pooled);
        assert_eq!(pooled, h.snapshot());
        let cap = pooled.buckets.capacity();
        let ptr = pooled.buckets.as_ptr();
        h.record(7);
        h.snapshot_into(&mut pooled);
        assert_eq!(pooled.count, 4);
        assert_eq!(pooled.buckets.capacity(), cap);
        assert_eq!(pooled.buckets.as_ptr(), ptr, "refill must not reallocate");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.quantile(0.99), 0);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(1.5);
        g.add(0.25);
        assert!((g.get() - 1.75).abs() < 1e-12);
    }
}
