//! Bounded ring-buffer job tracer.
//!
//! Every job carries a `trace` id minted at its arrival edge; every
//! lifecycle stage (arrival → admission → (re)allocation → release →
//! completion) and every reconfiguration phase (prepare/commit/abort)
//! appends one [`TraceRecord`]. The buffer is a fixed-capacity ring —
//! when full, the oldest record is dropped and counted, so tracing can
//! stay on permanently without unbounded growth. Dumps are JSON lines,
//! one record per line, so traces from two bridged hosts concatenate
//! into one stream and correlate on the `trace` field.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Default ring capacity (records), sized for minutes of tracing at
/// realistic job rates without noticeable memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// One trace point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Correlation id — identical across every stage of one job (or one
    /// reconfiguration), including stages recorded on bridged peer hosts.
    pub trace: u64,
    /// Nanoseconds on the recording host's shared clock.
    pub at_ns: u64,
    /// Host id of the recording federation (0 for single-host runs).
    pub host: u64,
    /// Lifecycle stage, e.g. `"arrival"`, `"admission"`, `"release"`,
    /// `"completion"`, `"reconfig_prepare"`.
    pub stage: String,
    /// Free-form detail (task name, placement, verdict, epoch, ...).
    pub detail: String,
}

/// Fixed-capacity ring of trace records.
#[derive(Debug)]
pub struct TraceBuffer {
    cap: usize,
    /// Keep 1-in-N traces (N = `sample_every`); 1 keeps everything.
    sample_every: u64,
    ring: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
    sampled_out: AtomicU64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    /// A ring holding at most `cap` records (minimum 1), keeping every
    /// trace.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        TraceBuffer::sampled(cap, 1)
    }

    /// A ring that keeps roughly 1-in-`sample_every` *traces* (minimum 1
    /// = keep all). Sampling is decided per trace id — a deterministic
    /// hash of the id, not of arrival order — so every stage of one job
    /// (or one reconfiguration) is kept or skipped together, including
    /// stages recorded on bridged peer hosts sharing the id.
    #[must_use]
    pub fn sampled(cap: usize, sample_every: u64) -> Self {
        TraceBuffer {
            cap: cap.max(1),
            sample_every: sample_every.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
        }
    }

    /// The sampling ratio: records are kept for 1-in-N trace ids.
    #[must_use]
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// True when records for this trace id are kept by the sampler.
    #[must_use]
    pub fn keeps(&self, trace: u64) -> bool {
        self.sample_every == 1 || splitmix64(trace).is_multiple_of(self.sample_every)
    }

    /// Appends a record, evicting the oldest when full. Records whose
    /// trace id the sampler skips are counted and discarded.
    pub fn push(&self, record: TraceRecord) {
        if !self.keeps(record.trace) {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Convenience push from parts.
    pub fn record(&self, trace: u64, at_ns: u64, host: u64, stage: &str, detail: String) {
        self.push(TraceRecord { trace, at_ns, host, stage: stage.to_string(), detail });
    }

    /// Records currently buffered (oldest first).
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring.lock().expect("trace ring poisoned").iter().cloned().collect()
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records discarded by the 1-in-N sampler (never buffered).
    #[must_use]
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out.load(Ordering::Relaxed)
    }

    /// Number of buffered records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON-lines dump: one record per line, oldest first.
    #[must_use]
    pub fn dump_json_lines(&self) -> String {
        let mut out = String::new();
        for r in self.snapshot() {
            out.push_str(&serde_json::to_string(&r).expect("plain data"));
            out.push('\n');
        }
        out
    }
}

/// The splitmix64 finalizer — the id minter for traces (and elsewhere,
/// host ids): deterministic, cheap, and well-mixed, so ids minted from
/// `(host, task-hash, seq)` never collide in practice.
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ring_drops_oldest_when_full() {
        let buf = TraceBuffer::new(2);
        for i in 0..3u64 {
            buf.record(i, i, 0, "arrival", String::new());
        }
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].trace, 1);
        assert_eq!(snap[1].trace, 2);
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn json_lines_round_trip() {
        let buf = TraceBuffer::new(8);
        buf.record(42, 1000, 7, "admission", "accepted".into());
        let dump = buf.dump_json_lines();
        let line = dump.lines().next().unwrap();
        let back: TraceRecord = serde_json::from_str(line).unwrap();
        assert_eq!(back.trace, 42);
        assert_eq!(back.stage, "admission");
        assert_eq!(back.detail, "accepted");
    }

    #[test]
    fn sampler_keeps_whole_traces_one_in_n() {
        let buf = TraceBuffer::sampled(1024, 4);
        let mut kept_ids = HashSet::new();
        for trace in 0..256u64 {
            for stage in ["arrival", "admission", "completion"] {
                buf.push(TraceRecord {
                    trace,
                    at_ns: trace,
                    host: 0,
                    stage: stage.to_string(),
                    detail: String::new(),
                });
            }
            if buf.keeps(trace) {
                kept_ids.insert(trace);
            }
        }
        // Roughly a quarter of the trace ids survive, and each survivor
        // keeps all three of its stages.
        assert!(kept_ids.len() > 256 / 8 && kept_ids.len() < 256 / 2, "{}", kept_ids.len());
        assert_eq!(buf.len(), kept_ids.len() * 3);
        assert_eq!(buf.sampled_out(), (256 - kept_ids.len() as u64) * 3);
        for r in buf.snapshot() {
            assert!(kept_ids.contains(&r.trace));
        }
    }

    #[test]
    fn default_sampling_keeps_everything() {
        let buf = TraceBuffer::new(16);
        assert_eq!(buf.sample_every(), 1);
        for trace in 0..10u64 {
            assert!(buf.keeps(trace));
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }
}
