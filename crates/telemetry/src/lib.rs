//! # rtcm-telemetry
//!
//! The live telemetry plane of **rtcm** — the observability counterpart
//! to the runtime's report snapshot, built for the "millions of users"
//! north star where you have to *watch* the system, not stop it:
//!
//! * [`metrics`] — lock-free primitives: [`Counter`], [`Gauge`] and the
//!   log2-bucketed latency [`Histogram`] (record ≈ two relaxed atomic
//!   adds; exact sum/min/max; p50/p90/p99/p999 within bucket resolution),
//!   plus the [`Registry`] that names them;
//! * [`expo`] — Prometheus-style text exposition (v0.0.4): the
//!   [`Exposition`] builder renders registry metrics and report counters
//!   into one scrapeable page;
//! * [`oam`] — the dependency-free OAM endpoint: a std `TcpListener`
//!   serving `GET /metrics` and `GET /trace`, blocking in `accept` (zero
//!   idle wakeups), woken for shutdown by a loopback connect;
//! * [`trace`] — the bounded ring-buffer job tracer: arrival → admission
//!   → (re)allocation → release → completion and reconfiguration phases,
//!   correlated across bridged hosts by a minted `trace` id, dumped as
//!   JSON lines.
//!
//! The crate depends only on the (vendored) `serde`/`serde_json` pair for
//! trace dumps — no HTTP stack, no metrics framework — so every binary in
//! the workspace (runtime, harness nodes, examples) can mount an endpoint
//! for free.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod expo;
pub mod metrics;
pub mod oam;
pub mod trace;

pub use expo::Exposition;
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind,
    Registry, HISTOGRAM_BUCKETS,
};
pub use oam::{scrape, OamRoutes, OamServer, RouteFn};
pub use trace::{splitmix64, TraceBuffer, TraceRecord, DEFAULT_TRACE_CAPACITY};
