//! Prometheus-style text exposition (format v0.0.4).
//!
//! [`Exposition`] is a plain text builder: callers append counters, gauges
//! and histograms from wherever the values live — the lock-free
//! [`Registry`](crate::Registry) renders itself through it, and the
//! runtime appends its mutex-held report counters the same way, so one
//! scrape shows the whole system. Output is deterministic in append
//! order; the golden test pins names, labels and HELP/TYPE lines.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, Handle, HistogramSnapshot, Registry};

/// Text-exposition builder.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a `{k="v",...}` label block ("" when empty).
fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// Formats a float the way the exposition expects (integral values
/// without a trailing `.0` keeps counters grep-friendly).
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Exposition {
    /// An empty exposition.
    #[must_use]
    pub fn new() -> Self {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {}", fmt_value(value));
    }

    /// Appends a labelled constant-1 info gauge (`name{labels} 1`).
    pub fn info(&mut self, name: &str, help: &str, labels: &[(String, String)]) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name}{} 1", label_block(labels));
    }

    /// Appends a full histogram: cumulative `_bucket{le="..."}` lines over
    /// the occupied log2 range, `+Inf`, `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let mut cum = 0u64;
        let last = snap.buckets.iter().rposition(|&c| c > 0);
        if let Some(last) = last {
            for (i, &c) in snap.buckets.iter().enumerate().take(last + 1) {
                cum += c;
                // One cumulative line per power-of-two boundary up to the
                // occupied range; empty leading buckets are skipped.
                if c == 0 && i != last {
                    continue;
                }
                let _ =
                    writeln!(self.out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper_bound(i));
            }
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count {}", snap.count);
    }

    /// The accumulated exposition text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

impl Registry {
    /// Renders every registered metric (registration order) plus the
    /// build-info gauge into `expo`.
    pub fn render(&self, expo: &mut Exposition) {
        let info = self.build_info.lock().expect("registry poisoned").clone();
        if !info.is_empty() {
            expo.info("rtcm_build_info", "Build and configuration metadata.", &info);
        }
        let entries = self.entries.lock().expect("registry poisoned");
        // One pooled snapshot serves every histogram in the pass: the
        // bucket Vec is allocated once and refilled per entry.
        let mut snap = HistogramSnapshot::default();
        for e in entries.iter() {
            match &e.handle {
                Handle::Counter(c) => expo.counter(&e.name, &e.help, c.get()),
                Handle::Gauge(g) => expo.gauge(&e.name, &e.help, g.get()),
                Handle::Histogram(h) => {
                    h.snapshot_into(&mut snap);
                    expo.histogram(&e.name, &e.help, &snap);
                }
            }
        }
    }

    /// Convenience: the full exposition text for this registry alone.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut expo = Exposition::new();
        self.render(&mut expo);
        expo.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn counter_and_gauge_lines() {
        let mut e = Exposition::new();
        e.counter("rtcm_jobs_total", "Jobs.", 7);
        e.gauge("rtcm_slack", "Headroom.", 0.25);
        let text = e.finish();
        assert!(text.contains("# TYPE rtcm_jobs_total counter\nrtcm_jobs_total 7\n"));
        assert!(text.contains("# TYPE rtcm_slack gauge\nrtcm_slack 0.25\n"));
    }

    #[test]
    fn histogram_lines_are_cumulative() {
        let h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        let mut e = Exposition::new();
        e.histogram("rtcm_delay_ns", "Delay.", &h.snapshot());
        let text = e.finish();
        assert!(text.contains("rtcm_delay_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("rtcm_delay_ns_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("rtcm_delay_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("rtcm_delay_ns_sum 7\n"));
        assert!(text.contains("rtcm_delay_ns_count 3\n"));
    }

    #[test]
    fn info_labels_are_escaped() {
        let mut e = Exposition::new();
        e.info(
            "rtcm_build_info",
            "Build metadata.",
            &[("version".into(), "0.1.0".into()), ("cfg".into(), "a\"b".into())],
        );
        let text = e.finish();
        assert!(text.contains("rtcm_build_info{version=\"0.1.0\",cfg=\"a\\\"b\"} 1\n"));
    }
}
