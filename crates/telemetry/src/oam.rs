//! Dependency-free OAM scrape endpoint.
//!
//! A [`OamServer`] binds a std [`TcpListener`] and serves two routes over
//! minimal HTTP/1.0:
//!
//! * `GET /metrics` — the Prometheus-style text exposition (v0.0.4),
//!   rendered on demand by the mounted provider closure;
//! * `GET /trace` — the job tracer's JSON-lines dump.
//!
//! Requests are handled serially on one background thread (OAM traffic is
//! a scraper every few seconds, not user traffic), and the thread blocks
//! in `accept` — zero wakeups while nobody scrapes, in keeping with the
//! reactor's no-idle-polling discipline. Shutdown wakes the acceptor
//! with a loopback connection, so no poll loop is needed for that either.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Renders a route body on demand.
pub type RouteFn = Arc<dyn Fn() -> String + Send + Sync>;

/// The two OAM routes.
#[derive(Clone)]
pub struct OamRoutes {
    /// `GET /metrics` body (text exposition).
    pub metrics: RouteFn,
    /// `GET /trace` body (JSON lines).
    pub trace: RouteFn,
}

impl std::fmt::Debug for OamRoutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OamRoutes").finish_non_exhaustive()
    }
}

/// A running OAM endpoint; dropping it (or calling
/// [`OamServer::shutdown`]) stops the acceptor thread.
#[derive(Debug)]
pub struct OamServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl OamServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `routes`. The endpoint is loopback-only: non-local bind
    /// addresses are refused — use [`OamServer::start_with`] with an
    /// explicit opt-in to expose the endpoint beyond the host.
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or a non-loopback `addr`.
    pub fn start(addr: impl ToSocketAddrs, routes: OamRoutes) -> std::io::Result<OamServer> {
        Self::start_with(addr, routes, false)
    }

    /// Like [`OamServer::start`], but with the loopback gate explicit:
    /// `allow_non_local = true` permits binding a non-loopback address
    /// (e.g. `0.0.0.0`), exposing unauthenticated metrics and traces to
    /// the network. Keep it `false` unless the deployment really scrapes
    /// from another host.
    ///
    /// Every resolved candidate address is tried in turn (matching
    /// [`TcpListener::bind`]'s each-in-turn semantics, with the loopback
    /// gate applied per candidate), so a hostname like `localhost` that
    /// resolves to `::1` first still falls back to `127.0.0.1` on an
    /// IPv6-less host.
    ///
    /// # Errors
    ///
    /// The last bind error if no candidate could be bound, or
    /// [`PermissionDenied`](std::io::ErrorKind::PermissionDenied) if the
    /// remaining candidates were all non-loopback without the opt-in.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        routes: OamRoutes,
        allow_non_local: bool,
    ) -> std::io::Result<OamServer> {
        let mut listener = None;
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            if !allow_non_local && !candidate.ip().is_loopback() {
                last_err = Some(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    format!(
                        "refusing non-local OAM bind {candidate}: the endpoint is \
                         unauthenticated; pass allow_non_local = true to expose it \
                         beyond loopback"
                    ),
                ));
                continue;
            }
            match TcpListener::bind(candidate) {
                Ok(bound) => {
                    listener = Some(bound);
                    break;
                }
                Err(err) => last_err = Some(err),
            }
        }
        let Some(listener) = listener else {
            return Err(last_err.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address")
            }));
        };
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rtcm-oam".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::SeqCst) {
                    let Ok((stream, _)) = listener.accept() else { break };
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // One misbehaving scraper must not wedge the endpoint.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_one(stream, &routes);
                }
            })
            .expect("spawn oam");
        Ok(OamServer { addr: local, stop, thread: Some(thread) })
    }

    /// The bound address (real port even when started on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and joins its thread.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OamServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// Reads one request head, dispatches on the path, writes one response.
fn serve_one(mut stream: TcpStream, routes: &OamRoutes) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head; bodies are ignored (GET).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8192 {
            return respond(&mut stream, "400 Bad Request", "text/plain", "oversized request\n");
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    match path.split('?').next().unwrap_or("") {
        "/metrics" => {
            let body = (routes.metrics)();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/trace" => {
            let body = (routes.trace)();
            respond(&mut stream, "200 OK", "application/x-ndjson; charset=utf-8", &body)
        }
        "/" => respond(&mut stream, "200 OK", "text/plain", "rtcm OAM: /metrics /trace\n"),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "unknown route\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal scrape client for tests and the harness: fetches `path` from
/// an OAM endpoint and returns the response body.
///
/// # Errors
///
/// I/O errors, or a non-200 status.
pub fn scrape(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.0\r\nHost: oam\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "no response head"));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!("scrape {path}: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routes(metrics: &'static str, trace: &'static str) -> OamRoutes {
        OamRoutes {
            metrics: Arc::new(move || metrics.to_string()),
            trace: Arc::new(move || trace.to_string()),
        }
    }

    #[test]
    fn serves_metrics_and_trace() {
        let server = OamServer::start("127.0.0.1:0", routes("m 1\n", "{\"t\":1}\n")).unwrap();
        let addr = server.addr();
        assert_eq!(scrape(addr, "/metrics").unwrap(), "m 1\n");
        assert_eq!(scrape(addr, "/trace").unwrap(), "{\"t\":1}\n");
        assert!(scrape(addr, "/nope").is_err(), "404 is an error");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_port_is_released() {
        let server = OamServer::start("127.0.0.1:0", routes("", "")).unwrap();
        let addr = server.addr();
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(start.elapsed() < Duration::from_secs(2), "no blocked acceptor");
        // The port can be rebound after shutdown.
        let again = OamServer::start(addr, routes("", "")).unwrap();
        again.shutdown();
    }

    #[test]
    fn non_local_bind_is_refused_by_default() {
        let err = OamServer::start("0.0.0.0:0", routes("", "")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);

        // Loopback is unaffected.
        let server = OamServer::start("127.0.0.1:0", routes("ok\n", "")).unwrap();
        assert_eq!(scrape(server.addr(), "/metrics").unwrap(), "ok\n");
        server.shutdown();

        // The explicit opt-in permits a wildcard bind.
        let server = OamServer::start_with("0.0.0.0:0", routes("wide\n", ""), true).unwrap();
        let port = server.addr().port();
        assert_eq!(scrape(("127.0.0.1", port), "/metrics").unwrap(), "wide\n");
        server.shutdown();
    }

    #[test]
    fn hostname_binds_across_all_resolved_candidates() {
        // `localhost` may resolve to `::1` first; the bind must fall
        // back across candidates instead of failing on the first one
        // (e.g. on an IPv6-less host).
        let server = OamServer::start("localhost:0", routes("lo\n", "")).unwrap();
        assert!(server.addr().ip().is_loopback());
        assert_eq!(scrape(server.addr(), "/metrics").unwrap(), "lo\n");
        server.shutdown();
    }

    #[test]
    fn consecutive_scrapes_reflect_live_values() {
        let n = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let routes = OamRoutes {
            metrics: Arc::new(move || format!("n {}\n", n2.fetch_add(1, Ordering::SeqCst))),
            trace: Arc::new(String::new),
        };
        let server = OamServer::start("127.0.0.1:0", routes).unwrap();
        assert_eq!(scrape(server.addr(), "/metrics").unwrap(), "n 0\n");
        assert_eq!(scrape(server.addr(), "/metrics").unwrap(), "n 1\n");
        server.shutdown();
    }
}
