//! Property-based tests of the federated event channel: delivery
//! completeness, topic isolation and FIFO ordering under constant latency —
//! plus the backpressure contract under a concurrently stalled subscriber.

use std::time::{Duration as StdDuration, Instant};

use proptest::collection::vec;
use proptest::prelude::*;

use rtcm_events::{Federation, Latency, NodeId, Topic};

const RECV: StdDuration = StdDuration::from_secs(2);

/// The documented backpressure bound, exercised across threads: a stalled
/// *bounded* subscriber holds at most its capacity, loses only its own
/// oldest events, and never blocks the publisher or a live co-subscriber.
#[test]
fn stalled_bounded_subscriber_never_blocks_publisher_or_peers() {
    const N: usize = 20_000;
    const CAP: usize = 8;
    let fed = Federation::new(1, Latency::None, 0);
    let h = fed.handle(NodeId(0)).unwrap();
    let stalled = h.subscribe_bounded(Topic(1), CAP);
    let live = h.subscribe(Topic(1));

    let consumer = std::thread::spawn(move || {
        let mut got = 0usize;
        while got < N && live.recv_timeout(StdDuration::from_secs(10)).is_ok() {
            got += 1;
        }
        got
    });

    let start = Instant::now();
    for i in 0..N {
        assert_eq!(h.publish(Topic(1), vec![(i % 256) as u8]), 2);
    }
    let publish_time = start.elapsed();

    assert_eq!(consumer.join().unwrap(), N, "the live subscriber sees every event");
    assert!(
        publish_time < StdDuration::from_secs(5),
        "publisher flooded {N} events without blocking ({publish_time:?})"
    );
    // The stalled subscriber holds exactly its bound; everything older was
    // dropped and counted, observably, at the receiver and the federation.
    assert_eq!(stalled.len(), CAP);
    assert_eq!(stalled.dropped(), (N - CAP) as u64);
    assert_eq!(fed.stats().events_dropped, (N - CAP) as u64);
    assert_eq!(fed.stats().events_published, N as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every published message reaches every subscriber of its topic on
    /// every node, and only those.
    #[test]
    fn delivery_completeness(
        messages in vec((0u16..3, 0u32..3), 1..40),
        nodes in 2u16..5
    ) {
        let fed = Federation::new(nodes, Latency::None, 0);
        // One subscriber per (node, topic).
        let mut receivers = Vec::new();
        for n in 0..nodes {
            for t in 0..3u32 {
                receivers.push((n, t, fed.handle(NodeId(n)).unwrap().subscribe(Topic(t))));
            }
        }
        let mut expected = vec![0usize; (nodes as usize) * 3];
        for (source, topic) in &messages {
            let source = source % nodes;
            fed.handle(NodeId(source)).unwrap().publish(Topic(*topic), vec![*topic as u8]);
            for n in 0..nodes {
                expected[(n as usize) * 3 + *topic as usize] += 1;
            }
        }
        for (n, t, rx) in &receivers {
            let want = expected[(*n as usize) * 3 + *t as usize];
            for i in 0..want {
                let ev = rx
                    .recv_timeout(RECV)
                    .unwrap_or_else(|_| panic!("node {n} topic {t}: missing message {i}"));
                prop_assert_eq!(ev.topic, Topic(*t));
            }
            prop_assert!(rx.try_recv().is_err(), "node {} topic {} got extras", n, t);
        }
    }

    /// Constant latency preserves per-publisher FIFO order across nodes.
    #[test]
    fn fifo_under_constant_latency(count in 1usize..60, latency_us in 0u64..500) {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_micros(latency_us)), 1);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(0));
        let h = fed.handle(NodeId(0)).unwrap();
        for i in 0..count {
            h.publish(Topic(0), vec![(i % 256) as u8]);
        }
        for i in 0..count {
            let ev = rx.recv_timeout(RECV).unwrap();
            prop_assert_eq!(ev.payload.as_ref(), &[(i % 256) as u8]);
        }
    }
}
