//! Property-based tests of the federated event channel: delivery
//! completeness, topic isolation and FIFO ordering under constant latency.

use std::time::Duration as StdDuration;

use proptest::collection::vec;
use proptest::prelude::*;

use rtcm_events::{Federation, Latency, NodeId, Topic};

const RECV: StdDuration = StdDuration::from_secs(2);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every published message reaches every subscriber of its topic on
    /// every node, and only those.
    #[test]
    fn delivery_completeness(
        messages in vec((0u16..3, 0u32..3), 1..40),
        nodes in 2u16..5
    ) {
        let fed = Federation::new(nodes, Latency::None, 0);
        // One subscriber per (node, topic).
        let mut receivers = Vec::new();
        for n in 0..nodes {
            for t in 0..3u32 {
                receivers.push((n, t, fed.handle(NodeId(n)).unwrap().subscribe(Topic(t))));
            }
        }
        let mut expected = vec![0usize; (nodes as usize) * 3];
        for (source, topic) in &messages {
            let source = source % nodes;
            fed.handle(NodeId(source)).unwrap().publish(Topic(*topic), vec![*topic as u8]);
            for n in 0..nodes {
                expected[(n as usize) * 3 + *topic as usize] += 1;
            }
        }
        for (n, t, rx) in &receivers {
            let want = expected[(*n as usize) * 3 + *t as usize];
            for i in 0..want {
                let ev = rx
                    .recv_timeout(RECV)
                    .unwrap_or_else(|_| panic!("node {n} topic {t}: missing message {i}"));
                prop_assert_eq!(ev.topic, Topic(*t));
            }
            prop_assert!(rx.try_recv().is_err(), "node {} topic {} got extras", n, t);
        }
    }

    /// Constant latency preserves per-publisher FIFO order across nodes.
    #[test]
    fn fifo_under_constant_latency(count in 1usize..60, latency_us in 0u64..500) {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_micros(latency_us)), 1);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(0));
        let h = fed.handle(NodeId(0)).unwrap();
        for i in 0..count {
            h.publish(Topic(0), vec![(i % 256) as u8]);
        }
        for i in 0..count {
            let ev = rx.recv_timeout(RECV).unwrap();
            prop_assert_eq!(ev.payload.as_ref(), &[(i % 256) as u8]);
        }
    }
}
