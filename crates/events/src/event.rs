//! Event and topic types for the federated channel.
//!
//! The paper's middleware rides on TAO's real-time event service: suppliers
//! push typed events ("Task Arrive", "Accept", "Trigger", "Idle
//! Resetting") through local event channels, and gateways federate them to
//! consumers on other processors. This module models the unit being moved:
//! an opaque payload tagged with a [`Topic`] and its source node.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A node in the federation — one "processor" in the paper's architecture
/// (application processors plus the task manager).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// An event type tag. Consumers subscribe per topic; gateways forward per
/// topic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Topic(pub u32);

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topic{}", self.0)
    }
}

/// Well-known topics of the middleware (matching the ports in Figure 3).
pub mod topics {
    use super::Topic;

    /// TE → AC: a task arrived and is being held.
    pub const TASK_ARRIVE: Topic = Topic(1);
    /// AC → TE: release the held task.
    pub const ACCEPT: Topic = Topic(2);
    /// AC → TE: drop the held task.
    pub const REJECT: Topic = Topic(3);
    /// F/I subtask → next subtask: start the next stage.
    pub const TRIGGER: Topic = Topic(4);
    /// IR → AC: completed subjobs whose contributions can be removed.
    pub const IDLE_RESET: Topic = Topic(5);
    /// AC → all nodes: a live reconfiguration phase (prepare / commit /
    /// abort of a `ServiceConfig` swap). Bridging this topic through a TCP
    /// gateway propagates mode changes to remote hosts.
    pub const RECONFIG: Topic = Topic(6);
    /// Node → AC: acknowledgement that the node fenced its local fast
    /// paths for a pending reconfiguration epoch.
    pub const RECONFIG_ACK: Topic = Topic(7);

    /// Base of the reserved per-node control range (`0x4000_0000..`):
    /// topics the runtime mints per processor so launcher↔node control
    /// traffic (injected arrivals, shutdown) rides the same federated
    /// channel — and the same fast path — as every middleware event.
    /// Application topics should stay below this range.
    pub const CONTROL_BASE: u32 = 0x4000_0000;

    /// Launcher → TE of `processor`: an injected arrival
    /// (`rtcm_rt::proto::InjectMsg`).
    #[must_use]
    pub const fn inject(processor: u16) -> Topic {
        Topic(CONTROL_BASE | processor as u32)
    }

    /// Launcher → node thread of `processor`: stop (payload ignored).
    #[must_use]
    pub const fn node_ctl(processor: u16) -> Topic {
        Topic(CONTROL_BASE | 0x0100_0000 | processor as u32)
    }

    /// Launcher → task manager: a control request was enqueued on the
    /// manager's out-of-band channel — wake its mailbox (payload
    /// ignored). Lets the manager park on one wait point instead of
    /// polling its control channel.
    pub const MANAGER_WAKE: Topic = Topic(CONTROL_BASE | 0x0200_0000);

    /// Owner → quorum-member delegate: a stop request was enqueued on the
    /// member's out-of-band channel — wake its mailbox (payload ignored).
    /// Lets the delegate park on one wait point (fence deadline or
    /// reconfiguration traffic) instead of polling its stop channel.
    pub const QUORUM_CTL: Topic = Topic(CONTROL_BASE | 0x0300_0000);

    /// Owner → governor thread: a stop request was enqueued on the
    /// governor's out-of-band channel — wake its mailbox (payload
    /// ignored). The sensing tick itself rides the governor reactor's
    /// timer wheel, so this is the *only* event its mailbox ever sees.
    pub const GOVERNOR_CTL: Topic = Topic(CONTROL_BASE | 0x0400_0000);
}

/// One event in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The event type tag.
    pub topic: Topic,
    /// The publishing node.
    pub source: NodeId,
    /// Serialized payload (the runtime uses `serde_json`; the channel does
    /// not interpret it).
    pub payload: Bytes,
}

impl Event {
    /// Creates an event.
    #[must_use]
    pub fn new(topic: Topic, source: NodeId, payload: impl Into<Bytes>) -> Self {
        Event { topic, source, payload: payload.into() }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} from {} ({} bytes)", self.topic, self.source, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_construction_and_display() {
        let e = Event::new(topics::TASK_ARRIVE, NodeId(3), vec![1, 2, 3]);
        assert_eq!(e.topic, Topic(1));
        assert_eq!(e.source, NodeId(3));
        assert_eq!(e.payload.as_ref(), &[1, 2, 3]);
        assert_eq!(e.to_string(), "topic1 from N3 (3 bytes)");
    }

    #[test]
    fn well_known_topics_are_distinct() {
        let all = [
            topics::TASK_ARRIVE,
            topics::ACCEPT,
            topics::REJECT,
            topics::TRIGGER,
            topics::IDLE_RESET,
            topics::RECONFIG,
            topics::RECONFIG_ACK,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
