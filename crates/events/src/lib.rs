//! # rtcm-events
//!
//! Federated real-time event channel substrate for **rtcm** — the
//! replacement for TAO's federated event service that connects the paper's
//! processors (§3, Figure 1): "all processors are connected by TAO's
//! federated event channel which pushes events through local event
//! channels, gateways and remote event channels to the events' consumers
//! sitting on different processors."
//!
//! * [`event`] — events, topics (including the middleware's well-known
//!   topics) and node ids;
//! * [`federation`] — local channels + gateway forwarding over an
//!   in-process network with injectable one-way [`Latency`], so
//!   communication delay is measurable exactly where Figure 8 measures it.
//!
//! # Examples
//!
//! ```
//! use rtcm_events::{topics, Federation, Latency, NodeId};
//!
//! // A task manager (node 0) and two application processors.
//! let fed = Federation::new(3, Latency::None, 0);
//! let manager = fed.handle(NodeId(0))?;
//! let arrivals = manager.subscribe(topics::TASK_ARRIVE);
//!
//! fed.handle(NodeId(2))?.publish(topics::TASK_ARRIVE, &b"T3 arrived"[..]);
//! let event = arrivals.recv_timeout(std::time::Duration::from_secs(1))?;
//! assert_eq!(event.source, NodeId(2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod event;
pub mod fanout;
pub mod federation;
pub mod remote;
pub mod wire;

pub use event::{topics, Event, NodeId, Topic};
pub use fanout::{EventReceiver, FederationStats, RecvError, RecvTimeoutError, TryRecvError};
pub use federation::{ChannelHandle, Federation, Latency, UnknownNodeError};
pub use remote::{BridgeCloseReason, BridgeHandle, BridgeState};
