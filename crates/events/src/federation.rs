//! The federated event channel: per-node local channels, gateway
//! forwarding, and a latency-injecting in-process network.
//!
//! This substitutes for TAO's federated real-time event service (§3): each
//! node has a local channel delivering synchronously to its own consumers;
//! publications whose topic has consumers on *other* nodes are forwarded
//! through the network, which injects a configurable one-way [`Latency`]
//! before delivery — making communication delay a first-class, measurable
//! quantity exactly where the paper's Figure 8 measures it (op 2).
//!
//! Subscription propagation is modeled with a shared topic→nodes registry
//! instead of TAO's gateway handshake protocol; the observable behavior —
//! events reach exactly the nodes with matching consumers, after one
//! network delay — is the same.
//!
//! # Examples
//!
//! ```
//! use rtcm_events::{Event, Federation, Latency, NodeId, Topic};
//!
//! let fed = Federation::new(2, Latency::None, 0);
//! let consumer = fed.handle(NodeId(1))?.subscribe(Topic(7));
//! fed.handle(NodeId(0))?.publish(Topic(7), &b"hello"[..]);
//!
//! let event = consumer.recv_timeout(std::time::Duration::from_secs(1))?;
//! assert_eq!(event.source, NodeId(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{Event, NodeId, Topic};

/// One-way network delay injected between distinct nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Latency {
    /// Deliver as fast as the channel allows.
    None,
    /// A fixed delay per message.
    Constant(StdDuration),
    /// Uniformly distributed in `[lo, hi]`.
    Uniform {
        /// Minimum delay.
        lo: StdDuration,
        /// Maximum delay.
        hi: StdDuration,
    },
}

impl Latency {
    fn sample(&self, rng: &mut StdRng) -> StdDuration {
        match *self {
            Latency::None => StdDuration::ZERO,
            Latency::Constant(d) => d,
            Latency::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    let span = (hi - lo).as_nanos() as u64;
                    lo + StdDuration::from_nanos(rng.gen_range(0..=span))
                }
            }
        }
    }
}

struct Parcel {
    deliver_at: Instant,
    seq: u64,
    to: NodeId,
    event: Event,
}

impl PartialEq for Parcel {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Parcel {}
impl PartialOrd for Parcel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Parcel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: earliest (deliver_at, seq) first in the max-heap.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

type SubMap = HashMap<(NodeId, Topic), Vec<Sender<Event>>>;

/// Source of federation host ids: process-qualified (high bits) and
/// counter-disambiguated (low bits), with a wall-clock mix so two
/// *processes* on different machines are overwhelmingly unlikely to mint
/// the same identity. Host ids let protocols that bridge federations over
/// TCP (`remote`) tell which federation a message originated from — e.g.
/// the reconfiguration quorum counts one vote per bridged host.
static NEXT_HOST_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn mint_host_id() -> u64 {
    let counter = NEXT_HOST_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let pid = u64::from(std::process::id());
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    // The counter owns the low bits, so ids within one process are
    // guaranteed distinct; pid and wall clock only de-collide processes.
    ((pid ^ (clock >> 20)) << 20) | (counter & 0xF_FFFF)
}

struct Inner {
    node_count: u16,
    host_id: u64,
    subs: RwLock<SubMap>,
    topic_nodes: RwLock<HashMap<Topic, BTreeSet<NodeId>>>,
    net_tx: Mutex<Option<Sender<Parcel>>>,
    latency: Latency,
    rng: Mutex<StdRng>,
    seq: Mutex<u64>,
}

impl Inner {
    fn deliver(subs: &RwLock<SubMap>, to: NodeId, event: &Event) -> usize {
        let map = subs.read();
        let mut delivered = 0;
        if let Some(senders) = map.get(&(to, event.topic)) {
            for tx in senders {
                if tx.send(event.clone()).is_ok() {
                    delivered += 1;
                }
            }
        }
        delivered
    }
}

/// A federation of local event channels over a latency-injecting
/// in-process network.
pub struct Federation {
    inner: Arc<Inner>,
    net_thread: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Federation")
            .field("node_count", &self.inner.node_count)
            .field("latency", &self.inner.latency)
            .finish()
    }
}

impl Federation {
    /// Creates a federation of `node_count` nodes. `seed` drives latency
    /// jitter sampling.
    #[must_use]
    pub fn new(node_count: u16, latency: Latency, seed: u64) -> Self {
        let (tx, rx) = channel::unbounded::<Parcel>();
        let inner = Arc::new(Inner {
            node_count,
            host_id: mint_host_id(),
            subs: RwLock::new(HashMap::new()),
            topic_nodes: RwLock::new(HashMap::new()),
            net_tx: Mutex::new(Some(tx)),
            latency,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            seq: Mutex::new(0),
        });
        let thread_inner = Arc::clone(&inner);
        let net_thread = std::thread::Builder::new()
            .name("rtcm-events-net".into())
            .spawn(move || network_loop(&thread_inner, &rx))
            .expect("spawn network thread");
        Federation { inner, net_thread: Some(net_thread) }
    }

    /// Number of nodes in the federation.
    #[must_use]
    pub fn node_count(&self) -> u16 {
        self.inner.node_count
    }

    /// This federation's unique host identity. Events do not carry it; it
    /// exists for *protocols* layered on bridged federations (e.g. the
    /// runtime's reconfiguration quorum) to distinguish hosts — two
    /// federations never share an id within a process, and collisions
    /// across processes are negligible (pid + wall-clock mixed in).
    #[must_use]
    pub fn host_id(&self) -> u64 {
        self.inner.host_id
    }

    /// Obtains the channel handle of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNodeError`] if the node id is out of range.
    pub fn handle(&self, node: NodeId) -> Result<ChannelHandle, UnknownNodeError> {
        if node.0 >= self.inner.node_count {
            return Err(UnknownNodeError { node, node_count: self.inner.node_count });
        }
        Ok(ChannelHandle { node, inner: Arc::clone(&self.inner) })
    }

    /// Stops the network thread, delivering any in-flight parcels
    /// immediately (best effort). Local publish/subscribe keeps working;
    /// cross-node forwarding stops.
    pub fn shutdown(&mut self) {
        *self.inner.net_tx.lock() = None;
        if let Some(t) = self.net_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn network_loop(inner: &Arc<Inner>, rx: &Receiver<Parcel>) {
    let mut heap: BinaryHeap<Parcel> = BinaryHeap::new();
    loop {
        let now = Instant::now();
        // Deliver everything due.
        while heap.peek().is_some_and(|p| p.deliver_at <= now) {
            let p = heap.pop().expect("peeked");
            Inner::deliver(&inner.subs, p.to, &p.event);
        }
        let wait = heap.peek().map(|p| p.deliver_at.saturating_duration_since(now));
        match wait {
            Some(StdDuration::ZERO) => continue,
            Some(d) if d < StdDuration::from_millis(2) => {
                // Spin for short waits: OS timers on coarse-HZ kernels
                // overshoot sub-millisecond parks by ~1 ms, and injected
                // communication delay is a measured quantity that must stay
                // accurate. The spin window is bounded by the delay model
                // (hundreds of µs), so the burn is brief.
                std::hint::spin_loop();
                continue;
            }
            Some(d) => match rx.recv_timeout(d) {
                Ok(p) => heap.push(p),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            },
            None => match rx.recv() {
                Ok(p) => heap.push(p),
                Err(_) => break,
            },
        }
    }
    // Shutdown: flush whatever is left, immediately.
    while let Some(p) = heap.pop() {
        Inner::deliver(&inner.subs, p.to, &p.event);
    }
    while let Ok(p) = rx.try_recv() {
        Inner::deliver(&inner.subs, p.to, &p.event);
    }
}

/// A node's local event channel within a [`Federation`].
pub struct ChannelHandle {
    node: NodeId,
    inner: Arc<Inner>,
}

impl fmt::Debug for ChannelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelHandle").field("node", &self.node).finish()
    }
}

impl Clone for ChannelHandle {
    fn clone(&self) -> Self {
        ChannelHandle { node: self.node, inner: Arc::clone(&self.inner) }
    }
}

impl ChannelHandle {
    /// The node this handle publishes from / subscribes on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning federation's host identity (see [`Federation::host_id`]).
    #[must_use]
    pub fn host_id(&self) -> u64 {
        self.inner.host_id
    }

    /// Registers a consumer for `topic` on this node and returns its queue.
    /// Subscription is propagated to all gateways (publishers on other
    /// nodes start forwarding immediately).
    pub fn subscribe(&self, topic: Topic) -> Receiver<Event> {
        let (tx, rx) = channel::unbounded();
        self.inner.subs.write().entry((self.node, topic)).or_default().push(tx);
        self.inner.topic_nodes.write().entry(topic).or_default().insert(self.node);
        rx
    }

    /// Publishes an event: synchronous delivery to this node's consumers,
    /// network-delayed delivery to every other node with consumers on the
    /// topic. Returns the number of local deliveries plus remote parcels
    /// sent.
    pub fn publish(&self, topic: Topic, payload: impl Into<bytes::Bytes>) -> usize {
        let event = Event::new(topic, self.node, payload);
        let mut count = Inner::deliver(&self.inner.subs, self.node, &event);

        let remotes: Vec<NodeId> = {
            let map = self.inner.topic_nodes.read();
            match map.get(&topic) {
                Some(nodes) => nodes.iter().copied().filter(|n| *n != self.node).collect(),
                None => Vec::new(),
            }
        };
        if remotes.is_empty() {
            return count;
        }
        let tx_guard = self.inner.net_tx.lock();
        let Some(tx) = tx_guard.as_ref() else { return count };
        for to in remotes {
            let delay = self.inner.latency.sample(&mut self.inner.rng.lock());
            let seq = {
                let mut s = self.inner.seq.lock();
                *s += 1;
                *s
            };
            let parcel =
                Parcel { deliver_at: Instant::now() + delay, seq, to, event: event.clone() };
            if tx.send(parcel).is_ok() {
                count += 1;
            }
        }
        count
    }
}

/// Error for handles requested on nonexistent nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownNodeError {
    /// The requested node.
    pub node: NodeId,
    /// Nodes in the federation.
    pub node_count: u16,
}

impl fmt::Display for UnknownNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} outside the federation's 0..{} range", self.node, self.node_count)
    }
}

impl std::error::Error for UnknownNodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    const RECV: StdDuration = StdDuration::from_secs(2);

    #[test]
    fn local_delivery_is_synchronous() {
        let fed = Federation::new(1, Latency::None, 0);
        let h = fed.handle(NodeId(0)).unwrap();
        let rx = h.subscribe(Topic(1));
        let n = h.publish(Topic(1), &b"x"[..]);
        assert_eq!(n, 1);
        // No network hop: already in the queue.
        let e = rx.try_recv().unwrap();
        assert_eq!(e.payload.as_ref(), b"x");
    }

    #[test]
    fn cross_node_delivery() {
        let fed = Federation::new(3, Latency::None, 0);
        let rx1 = fed.handle(NodeId(1)).unwrap().subscribe(Topic(9));
        let rx2 = fed.handle(NodeId(2)).unwrap().subscribe(Topic(9));
        fed.handle(NodeId(0)).unwrap().publish(Topic(9), &b"cast"[..]);
        assert_eq!(rx1.recv_timeout(RECV).unwrap().source, NodeId(0));
        assert_eq!(rx2.recv_timeout(RECV).unwrap().source, NodeId(0));
    }

    #[test]
    fn topic_filtering() {
        let fed = Federation::new(2, Latency::None, 0);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        fed.handle(NodeId(0)).unwrap().publish(Topic(2), &b"other"[..]);
        assert!(rx.recv_timeout(StdDuration::from_millis(50)).is_err());
    }

    #[test]
    fn publish_without_consumers_is_dropped() {
        let fed = Federation::new(2, Latency::None, 0);
        let n = fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"void"[..]);
        assert_eq!(n, 0);
    }

    #[test]
    fn constant_latency_delays_delivery() {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_millis(30)), 0);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let start = Instant::now();
        fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"slow"[..]);
        rx.recv_timeout(RECV).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= StdDuration::from_millis(29), "elapsed {elapsed:?}");
        assert!(elapsed < StdDuration::from_millis(300), "elapsed {elapsed:?}");
    }

    #[test]
    fn latency_applies_only_across_nodes() {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_millis(200)), 0);
        let h0 = fed.handle(NodeId(0)).unwrap();
        let rx_local = h0.subscribe(Topic(1));
        h0.publish(Topic(1), &b"local"[..]);
        // Local consumers never wait on the network.
        assert!(rx_local.try_recv().is_ok());
    }

    #[test]
    fn fifo_under_constant_latency() {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_millis(5)), 0);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let h = fed.handle(NodeId(0)).unwrap();
        for i in 0u8..20 {
            h.publish(Topic(1), vec![i]);
        }
        for i in 0u8..20 {
            let e = rx.recv_timeout(RECV).unwrap();
            assert_eq!(e.payload.as_ref(), &[i]);
        }
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let fed = Federation::new(2, Latency::None, 0);
        let h1 = fed.handle(NodeId(1)).unwrap();
        let a = h1.subscribe(Topic(1));
        let b = h1.subscribe(Topic(1));
        fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"dup"[..]);
        assert!(a.recv_timeout(RECV).is_ok());
        assert!(b.recv_timeout(RECV).is_ok());
    }

    #[test]
    fn host_ids_are_unique_and_shared_by_handles() {
        let a = Federation::new(2, Latency::None, 0);
        let b = Federation::new(2, Latency::None, 0);
        assert_ne!(a.host_id(), b.host_id(), "two federations, two hosts");
        assert_eq!(a.handle(NodeId(0)).unwrap().host_id(), a.host_id());
        assert_eq!(a.handle(NodeId(1)).unwrap().host_id(), a.host_id());
    }

    #[test]
    fn unknown_node_is_an_error() {
        let fed = Federation::new(2, Latency::None, 0);
        let err = fed.handle(NodeId(7)).unwrap_err();
        assert_eq!(err, UnknownNodeError { node: NodeId(7), node_count: 2 });
        assert!(err.to_string().contains("N7"));
    }

    #[test]
    fn shutdown_stops_forwarding_but_not_local() {
        let mut fed = Federation::new(2, Latency::None, 0);
        let h0 = fed.handle(NodeId(0)).unwrap();
        let local = h0.subscribe(Topic(1));
        let remote = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        fed.shutdown();
        h0.publish(Topic(1), &b"after"[..]);
        assert!(local.try_recv().is_ok());
        assert!(remote.recv_timeout(StdDuration::from_millis(50)).is_err());
    }

    #[test]
    fn uniform_latency_stays_in_range() {
        let fed = Federation::new(
            2,
            Latency::Uniform { lo: StdDuration::from_millis(5), hi: StdDuration::from_millis(15) },
            42,
        );
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        for _ in 0..5 {
            let start = Instant::now();
            fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"j"[..]);
            rx.recv_timeout(RECV).unwrap();
            let e = start.elapsed();
            assert!(e >= StdDuration::from_millis(4), "elapsed {e:?}");
            assert!(e < StdDuration::from_millis(500), "elapsed {e:?}");
        }
    }

    #[test]
    fn stress_many_messages_across_nodes() {
        let fed = Federation::new(4, Latency::Constant(StdDuration::from_micros(100)), 1);
        let receivers: Vec<_> =
            (1..4).map(|n| fed.handle(NodeId(n)).unwrap().subscribe(Topic(1))).collect();
        let h = fed.handle(NodeId(0)).unwrap();
        const N: usize = 500;
        for i in 0..N {
            h.publish(Topic(1), vec![(i % 256) as u8]);
        }
        for rx in &receivers {
            for _ in 0..N {
                rx.recv_timeout(RECV).expect("all messages delivered");
            }
        }
    }
}
