//! The federated event channel: per-node local channels, gateway
//! forwarding, and a latency-injecting in-process network.
//!
//! This substitutes for TAO's federated real-time event service (§3): each
//! node has a local channel delivering synchronously to its own consumers;
//! publications whose topic has consumers on *other* nodes are forwarded
//! through the network, which injects a configurable one-way [`Latency`]
//! before delivery — making communication delay a first-class, measurable
//! quantity exactly where the paper's Figure 8 measures it (op 2).
//!
//! Subscription propagation is modeled with a shared topic→nodes registry
//! instead of TAO's gateway handshake protocol; the observable behavior —
//! events reach exactly the nodes with matching consumers, after one
//! network delay — is the same.
//!
//! # The event fast path
//!
//! Publishing is engineered as a read-mostly fast path (see DESIGN.md
//! "Event fast path"):
//!
//! * **Snapshot routing (RCU).** Subscriptions build an immutable
//!   [`RouteTable`] — per `(node, topic)`, the local broadcast logs plus
//!   the precomputed remote destination list — and swap it in under a
//!   write lock while bumping a generation counter. Publishers never
//!   mutate shared routing state.
//! * **Per-handle route cache.** Each [`ChannelHandle`] caches the route
//!   of the last topic it published, validated by a single atomic
//!   generation load — repeat publishes on one topic skip the table and
//!   its lock entirely.
//! * **Zero-copy fan-out.** Local subscribers of a `(node, topic)` share
//!   one [`crate::fanout::EventLog`]: a publish is one lock + one buffer
//!   push for *all* of them, and every receiver observes the same
//!   [`bytes::Bytes`] payload allocation.
//! * **Single-lock parcels.** Remote destinations are sequenced and
//!   latency-sampled under **one** `net` lock acquisition per publish, and
//!   the whole parcel batch rides one channel send to the network thread.
//!
//! Determinism contract: for a fixed seed, a fixed subscription set and a
//! single publishing thread, delivery order and the sampled parcel
//! latencies are identical run to run — destinations are walked in
//! ascending node order, and the jitter RNG is consumed once per remote
//! destination in exactly that order.
//!
//! # Examples
//!
//! ```
//! use rtcm_events::{Event, Federation, Latency, NodeId, Topic};
//!
//! let fed = Federation::new(2, Latency::None, 0);
//! let consumer = fed.handle(NodeId(1))?.subscribe(Topic(7));
//! fed.handle(NodeId(0))?.publish(Topic(7), &b"hello"[..]);
//!
//! let event = consumer.recv_timeout(std::time::Duration::from_secs(1))?;
//! assert_eq!(event.source, NodeId(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{Event, NodeId, Topic};
use crate::fanout::{EventLog, EventReceiver, FanoutCounters, FederationStats};

/// One-way network delay injected between distinct nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Latency {
    /// Deliver as fast as the channel allows.
    None,
    /// A fixed delay per message.
    Constant(StdDuration),
    /// Uniformly distributed in `[lo, hi]`.
    Uniform {
        /// Minimum delay.
        lo: StdDuration,
        /// Maximum delay.
        hi: StdDuration,
    },
}

impl Latency {
    fn sample(&self, rng: &mut StdRng) -> StdDuration {
        match *self {
            Latency::None => StdDuration::ZERO,
            Latency::Constant(d) => d,
            Latency::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    let span = (hi - lo).as_nanos() as u64;
                    lo + StdDuration::from_nanos(rng.gen_range(0..=span))
                }
            }
        }
    }
}

struct Parcel {
    deliver_at: Instant,
    seq: u64,
    to: NodeId,
    event: Event,
}

impl PartialEq for Parcel {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Parcel {}
impl PartialOrd for Parcel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Parcel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: earliest (deliver_at, seq) first in the max-heap.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Source of federation host ids, mixed from pid, a nanosecond clock, and
/// a per-process counter. Host ids let protocols that bridge federations
/// over TCP (`remote`) tell which federation a message originated from —
/// e.g. the reconfiguration quorum counts one vote per bridged host.
static NEXT_HOST_ID: AtomicU64 = AtomicU64::new(1);

fn mint_host_id() -> u64 {
    let counter = NEXT_HOST_ID.fetch_add(1, Ordering::Relaxed);
    let pid = u64::from(std::process::id());
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    // Finalize through splitmix64. A plain shift-and-xor combination is
    // not enough here: neighbouring pids and a coarse clock share almost
    // all their bits, and the multi-process harness demonstrated two
    // processes spawned within the same millisecond minting the SAME id
    // (merging their quorum votes). The seed sum is injective in
    // `counter` for a fixed (pid, clock) and splitmix64 is a bijection,
    // so ids within one process stay guaranteed distinct while the
    // avalanche de-collides processes at full 64-bit strength.
    let mut z = clock
        .wrapping_add(pid.rotate_left(32))
        .wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The precomputed route of one `(publisher node, topic)` pair.
struct TopicRoute {
    /// Broadcast logs with subscribers on the publishing node itself.
    local: Vec<Arc<EventLog>>,
    /// Other nodes with subscribers on the topic, ascending — empty for a
    /// pure-local topic, so such publishes do no remote work at all.
    remotes: Box<[NodeId]>,
}

/// An immutable routing snapshot (RCU): readers load the [`Arc`] and go;
/// subscription changes build a fresh table and swap it in.
struct RouteTable {
    generation: u64,
    routes: HashMap<(NodeId, Topic), Arc<TopicRoute>>,
}

/// The mutable subscription registry behind the snapshots (writer side
/// only — publishers never touch it).
#[derive(Default)]
struct Registry {
    /// Every log registered under a `(node, topic)`, in subscription
    /// order: the shared single-topic log plus any multi-topic mailboxes.
    subs: HashMap<(NodeId, Topic), Vec<Arc<EventLog>>>,
    /// The shared log plain subscriptions of a `(node, topic)` attach to.
    shared: HashMap<(NodeId, Topic), Arc<EventLog>>,
    /// Which nodes have (ever had) subscribers per topic — drives remote
    /// forwarding, exactly like TAO's gateway subscription propagation.
    topic_nodes: HashMap<Topic, BTreeSet<NodeId>>,
}

impl Registry {
    /// Drops logs whose receivers are all gone, so subscriber churn (e.g.
    /// a TCP bridge reconnecting and minting a fresh mailbox each time)
    /// cannot grow the registry — or the rebuilt routes, and with them
    /// per-publish cost — without bound. Run on every subscription change;
    /// `topic_nodes` intentionally keeps its "ever subscribed" semantics.
    fn purge_dead_logs(&mut self) {
        self.subs.retain(|_, logs| {
            logs.retain(|log| log.has_active_cursors());
            !logs.is_empty()
        });
        self.shared.retain(|_, log| log.has_active_cursors());
    }
}

/// Remote-parcel state: the jitter RNG, the parcel sequencer and the
/// network-thread sender share **one** lock so a publish acquires it once
/// for its whole destination batch.
struct NetState {
    rng: StdRng,
    seq: u64,
    tx: Option<Sender<Vec<Parcel>>>,
}

struct Inner {
    node_count: u16,
    host_id: u64,
    latency: Latency,
    registry: Mutex<Registry>,
    table: RwLock<Arc<RouteTable>>,
    /// Published *after* the table swap (release); handle caches validate
    /// against it with one acquire load.
    generation: AtomicU64,
    net: Mutex<NetState>,
    counters: FanoutCounters,
}

impl Inner {
    /// Rebuilds the routing snapshot from the registry (caller holds the
    /// registry lock, serializing writers).
    fn rebuild_table(&self, reg: &Registry) {
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let mut routes = HashMap::new();
        for (&topic, nodes) in &reg.topic_nodes {
            let sorted: Vec<NodeId> = nodes.iter().copied().collect();
            for n in 0..self.node_count {
                let node = NodeId(n);
                let local = reg.subs.get(&(node, topic)).cloned().unwrap_or_default();
                let remotes: Box<[NodeId]> =
                    sorted.iter().copied().filter(|&m| m != node).collect();
                if local.is_empty() && remotes.is_empty() {
                    continue;
                }
                routes.insert((node, topic), Arc::new(TopicRoute { local, remotes }));
            }
        }
        *self.table.write() = Arc::new(RouteTable { generation, routes });
        self.generation.store(generation, Ordering::Release);
    }

    /// Delivers a network parcel to the destination node's local logs.
    fn deliver_remote(&self, to: NodeId, event: &Event) {
        let table = self.table.read();
        let Some(route) = table.routes.get(&(to, event.topic)) else { return };
        let mut delivered = 0usize;
        let mut dropped = 0u64;
        for log in &route.local {
            let (d, dr) = log.push(event);
            delivered += d;
            dropped += dr;
        }
        drop(table);
        if delivered > 0 {
            self.counters.delivered.fetch_add(delivered as u64, Ordering::Relaxed);
        }
        if dropped > 0 {
            self.counters.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Close every log so outstanding receivers observe `Disconnected`
        // once they drain (the old per-subscriber channels disconnected at
        // exactly this point — when the last handle went away).
        let reg = self.registry.get_mut();
        for logs in reg.subs.values() {
            for log in logs {
                log.close();
            }
        }
    }
}

/// A federation of local event channels over a latency-injecting
/// in-process network.
pub struct Federation {
    inner: Arc<Inner>,
    net_thread: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Federation")
            .field("node_count", &self.inner.node_count)
            .field("latency", &self.inner.latency)
            .finish()
    }
}

impl Federation {
    /// Creates a federation of `node_count` nodes. `seed` drives latency
    /// jitter sampling.
    #[must_use]
    pub fn new(node_count: u16, latency: Latency, seed: u64) -> Self {
        let (tx, rx) = channel::unbounded::<Vec<Parcel>>();
        let inner = Arc::new(Inner {
            node_count,
            host_id: mint_host_id(),
            latency,
            registry: Mutex::new(Registry::default()),
            table: RwLock::new(Arc::new(RouteTable { generation: 0, routes: HashMap::new() })),
            generation: AtomicU64::new(0),
            net: Mutex::new(NetState { rng: StdRng::seed_from_u64(seed), seq: 0, tx: Some(tx) }),
            counters: FanoutCounters::default(),
        });
        let thread_inner = Arc::clone(&inner);
        let net_thread = std::thread::Builder::new()
            .name("rtcm-events-net".into())
            .spawn(move || network_loop(&thread_inner, &rx))
            .expect("spawn network thread");
        Federation { inner, net_thread: Some(net_thread) }
    }

    /// Number of nodes in the federation.
    #[must_use]
    pub fn node_count(&self) -> u16 {
        self.inner.node_count
    }

    /// This federation's unique host identity. Events do not carry it; it
    /// exists for *protocols* layered on bridged federations (e.g. the
    /// runtime's reconfiguration quorum) to distinguish hosts — two
    /// federations never share an id within a process, and collisions
    /// across processes are negligible (pid + wall-clock mixed in).
    #[must_use]
    pub fn host_id(&self) -> u64 {
        self.inner.host_id
    }

    /// Aggregate event-path counters: publishes, per-subscriber
    /// deliveries, backpressure drops at bounded subscribers, and remote
    /// parcels. Maintained with relaxed atomics on the publish path.
    #[must_use]
    pub fn stats(&self) -> FederationStats {
        self.inner.counters.snapshot()
    }

    /// Obtains the channel handle of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNodeError`] if the node id is out of range.
    pub fn handle(&self, node: NodeId) -> Result<ChannelHandle, UnknownNodeError> {
        if node.0 >= self.inner.node_count {
            return Err(UnknownNodeError { node, node_count: self.inner.node_count });
        }
        Ok(ChannelHandle::new(node, Arc::clone(&self.inner)))
    }

    /// Stops the network thread, delivering any in-flight parcels
    /// immediately (best effort). Local publish/subscribe keeps working;
    /// cross-node forwarding stops.
    pub fn shutdown(&mut self) {
        self.inner.net.lock().tx = None;
        if let Some(t) = self.net_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn network_loop(inner: &Arc<Inner>, rx: &Receiver<Vec<Parcel>>) {
    let mut heap: BinaryHeap<Parcel> = BinaryHeap::new();
    loop {
        let now = Instant::now();
        // Deliver everything due.
        while heap.peek().is_some_and(|p| p.deliver_at <= now) {
            let p = heap.pop().expect("peeked");
            inner.deliver_remote(p.to, &p.event);
        }
        let wait = heap.peek().map(|p| p.deliver_at.saturating_duration_since(now));
        match wait {
            Some(StdDuration::ZERO) => continue,
            Some(d) if d < StdDuration::from_millis(2) => {
                // Spin for short waits: OS timers on coarse-HZ kernels
                // overshoot sub-millisecond parks by ~1 ms, and injected
                // communication delay is a measured quantity that must stay
                // accurate. The spin window is bounded by the delay model
                // (hundreds of µs), so the burn is brief.
                std::hint::spin_loop();
                continue;
            }
            Some(d) => match rx.recv_timeout(d) {
                Ok(batch) => heap.extend(batch),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            },
            None => match rx.recv() {
                Ok(batch) => heap.extend(batch),
                Err(_) => break,
            },
        }
    }
    // Shutdown: flush whatever is left, immediately.
    while let Some(p) = heap.pop() {
        inner.deliver_remote(p.to, &p.event);
    }
    while let Ok(batch) = rx.try_recv() {
        for p in batch {
            inner.deliver_remote(p.to, &p.event);
        }
    }
}

/// The per-handle route cache: one topic's route, validated against the
/// table generation with a single atomic load.
#[derive(Default)]
struct RouteCache {
    valid: bool,
    generation: u64,
    topic: Topic,
    route: Option<Arc<TopicRoute>>,
}

/// A node's local event channel within a [`Federation`].
pub struct ChannelHandle {
    node: NodeId,
    inner: Arc<Inner>,
    cache: Mutex<RouteCache>,
}

impl fmt::Debug for ChannelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelHandle").field("node", &self.node).finish()
    }
}

impl Clone for ChannelHandle {
    fn clone(&self) -> Self {
        // Fresh (cold) cache: caches are per-handle so clones on other
        // threads never contend.
        ChannelHandle::new(self.node, Arc::clone(&self.inner))
    }
}

impl ChannelHandle {
    fn new(node: NodeId, inner: Arc<Inner>) -> Self {
        ChannelHandle { node, inner, cache: Mutex::new(RouteCache::default()) }
    }

    /// The node this handle publishes from / subscribes on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning federation's host identity (see [`Federation::host_id`]).
    #[must_use]
    pub fn host_id(&self) -> u64 {
        self.inner.host_id
    }

    /// Registers a consumer for `topic` on this node and returns its
    /// queue. Subscription is propagated to all gateways (publishers on
    /// other nodes start forwarding immediately). The subscriber buffers
    /// without bound; see [`ChannelHandle::subscribe_bounded`] for the
    /// backpressured variant.
    pub fn subscribe(&self, topic: Topic) -> EventReceiver {
        self.subscribe_with(topic, None)
    }

    /// Like [`ChannelHandle::subscribe`], but the subscriber holds at most
    /// `capacity` pending events: when a publish would exceed that, the
    /// subscriber's **oldest** pending event is dropped (and counted — see
    /// [`EventReceiver::dropped`] and [`Federation::stats`]). Publishers
    /// and co-subscribers are never blocked or slowed by a stalled bounded
    /// subscriber. A zero capacity is treated as one.
    pub fn subscribe_bounded(&self, topic: Topic, capacity: usize) -> EventReceiver {
        self.subscribe_with(topic, Some(capacity))
    }

    fn subscribe_with(&self, topic: Topic, cap: Option<usize>) -> EventReceiver {
        let mut reg = self.inner.registry.lock();
        reg.purge_dead_logs();
        let key = (self.node, topic);
        let log = match reg.shared.get(&key) {
            Some(log) => Arc::clone(log),
            None => {
                let log = Arc::new(EventLog::new());
                reg.shared.insert(key, Arc::clone(&log));
                reg.subs.entry(key).or_default().push(Arc::clone(&log));
                log
            }
        };
        reg.topic_nodes.entry(topic).or_default().insert(self.node);
        let rx = log.add_cursor(cap);
        self.inner.rebuild_table(&reg);
        rx
    }

    /// Registers one **mailbox** consuming every listed topic on this
    /// node: a single receiver observing all of them merged in publish
    /// order (events carry their [`Topic`] for dispatch). This is the
    /// runtime's node/manager inbox shape — one queue, one wait point.
    /// Duplicate topics are ignored.
    pub fn subscribe_many(&self, topics: &[Topic]) -> EventReceiver {
        let mut reg = self.inner.registry.lock();
        reg.purge_dead_logs();
        let log = Arc::new(EventLog::new());
        let unique: BTreeSet<Topic> = topics.iter().copied().collect();
        for topic in unique {
            reg.subs.entry((self.node, topic)).or_default().push(Arc::clone(&log));
            reg.topic_nodes.entry(topic).or_default().insert(self.node);
        }
        let rx = log.add_cursor(None);
        self.inner.rebuild_table(&reg);
        rx
    }

    /// Publishes an event: synchronous delivery to this node's consumers,
    /// network-delayed delivery to every other node with consumers on the
    /// topic. Returns the number of local deliveries plus remote parcels
    /// sent.
    pub fn publish(&self, topic: Topic, payload: impl Into<bytes::Bytes>) -> usize {
        let event = Event::new(topic, self.node, payload);
        let counters = &self.inner.counters;
        counters.published.fetch_add(1, Ordering::Relaxed);

        // Fast path: one acquire load validates the cached route; repeat
        // publishes on one topic never touch the table or its lock.
        let generation = self.inner.generation.load(Ordering::Acquire);
        let mut cache = self.cache.lock();
        if !(cache.valid && cache.generation == generation && cache.topic == topic) {
            let table = self.inner.table.read().clone();
            *cache = RouteCache {
                valid: true,
                generation: table.generation,
                topic,
                route: table.routes.get(&(self.node, topic)).cloned(),
            };
        }
        let Some(route) = cache.route.as_ref() else {
            return 0; // no subscribers anywhere: nothing to do
        };

        let mut local_delivered = 0usize;
        let mut dropped = 0u64;
        for log in &route.local {
            let (d, dr) = log.push(&event);
            local_delivered += d;
            dropped += dr;
        }
        // The delivered counter takes only the local fan-out here; remote
        // parcels are counted by `deliver_remote` when they actually land
        // (the return value still reports local deliveries + parcels
        // sent, as documented).
        let mut delivered = local_delivered;
        if !route.remotes.is_empty() {
            delivered += self.send_parcels(&route.remotes, &event);
        }
        if local_delivered > 0 {
            counters.delivered.fetch_add(local_delivered as u64, Ordering::Relaxed);
        }
        if dropped > 0 {
            counters.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        delivered
    }

    /// Publishes a whole batch of events from this node in **one** pass:
    /// consecutive same-topic runs share one route resolution and one
    /// broadcast-log lock ([`EventLog`] `push_batch`), the routing table is
    /// read once for the entire batch, and every remote parcel of the
    /// batch is sequenced under a single `net` lock acquisition and sent
    /// to the network thread as one message. This is the reader side of a
    /// TCP bridge republishing a drained frame batch — the mirror image of
    /// the forwarder's write coalescing. Returns local deliveries plus
    /// remote parcels sent, like [`ChannelHandle::publish`].
    pub fn publish_batch(&self, batch: &[(Topic, bytes::Bytes)]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let counters = &self.inner.counters;
        counters.published.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let table = self.inner.table.read().clone();

        let mut local_delivered = 0usize;
        let mut dropped = 0u64;
        let mut parcels: Vec<(&[NodeId], Vec<Event>)> = Vec::new();
        let mut start = 0usize;
        while start < batch.len() {
            let topic = batch[start].0;
            let mut end = start + 1;
            while end < batch.len() && batch[end].0 == topic {
                end += 1;
            }
            if let Some(route) = table.routes.get(&(self.node, topic)) {
                let events: Vec<Event> = batch[start..end]
                    .iter()
                    .map(|(t, p)| Event::new(*t, self.node, p.clone()))
                    .collect();
                for log in &route.local {
                    let (d, dr) = log.push_batch(&events);
                    local_delivered += d;
                    dropped += dr;
                }
                if !route.remotes.is_empty() {
                    parcels.push((&route.remotes, events));
                }
            }
            start = end;
        }

        // One net-lock acquisition and one channel send for every remote
        // parcel of the whole batch.
        let mut sent = 0usize;
        if !parcels.is_empty() {
            let mut net = self.inner.net.lock();
            if net.tx.is_some() {
                let now = Instant::now();
                let mut out = Vec::new();
                for (remotes, events) in &parcels {
                    for event in events {
                        for &to in *remotes {
                            let delay = self.inner.latency.sample(&mut net.rng);
                            net.seq += 1;
                            out.push(Parcel {
                                deliver_at: now + delay,
                                seq: net.seq,
                                to,
                                event: event.clone(),
                            });
                        }
                    }
                }
                sent = out.len();
                let tx = net.tx.as_ref().expect("checked above");
                if tx.send(out).is_ok() {
                    counters.remote_parcels.fetch_add(sent as u64, Ordering::Relaxed);
                } else {
                    sent = 0;
                }
            }
        }

        if local_delivered > 0 {
            counters.delivered.fetch_add(local_delivered as u64, Ordering::Relaxed);
        }
        if dropped > 0 {
            counters.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        local_delivered + sent
    }

    /// The owning federation's fan-out counters (bridges bump their
    /// rx-error / disconnect / tx-drop tallies through this).
    pub(crate) fn counters(&self) -> &FanoutCounters {
        &self.inner.counters
    }

    /// Snapshot of the owning federation's event-path counters — the same
    /// numbers as [`Federation::stats`], reachable from a cloned handle so
    /// long-lived exporters (e.g. an OAM scrape closure) need not borrow
    /// the federation itself.
    #[must_use]
    pub fn federation_stats(&self) -> FederationStats {
        self.inner.counters.snapshot()
    }

    /// Sequences and latency-samples the whole destination batch under one
    /// `net` lock acquisition, then hands it to the network thread as one
    /// message. Destinations ascend, so the per-seed RNG stream is stable.
    fn send_parcels(&self, remotes: &[NodeId], event: &Event) -> usize {
        let mut net = self.inner.net.lock();
        if net.tx.is_none() {
            return 0; // shut down: no forwarding, no RNG consumption
        }
        let now = Instant::now();
        let mut batch = Vec::with_capacity(remotes.len());
        for &to in remotes {
            let delay = self.inner.latency.sample(&mut net.rng);
            net.seq += 1;
            batch.push(Parcel { deliver_at: now + delay, seq: net.seq, to, event: event.clone() });
        }
        let sent = batch.len();
        let tx = net.tx.as_ref().expect("checked above");
        if tx.send(batch).is_ok() {
            self.inner.counters.remote_parcels.fetch_add(sent as u64, Ordering::Relaxed);
            sent
        } else {
            0
        }
    }
}

/// Error for handles requested on nonexistent nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownNodeError {
    /// The requested node.
    pub node: NodeId,
    /// Nodes in the federation.
    pub node_count: u16,
}

impl fmt::Display for UnknownNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} outside the federation's 0..{} range", self.node, self.node_count)
    }
}

impl std::error::Error for UnknownNodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    const RECV: StdDuration = StdDuration::from_secs(2);

    #[test]
    fn local_delivery_is_synchronous() {
        let fed = Federation::new(1, Latency::None, 0);
        let h = fed.handle(NodeId(0)).unwrap();
        let rx = h.subscribe(Topic(1));
        let n = h.publish(Topic(1), &b"x"[..]);
        assert_eq!(n, 1);
        // No network hop: already in the queue.
        let e = rx.try_recv().unwrap();
        assert_eq!(e.payload.as_ref(), b"x");
    }

    #[test]
    fn cross_node_delivery() {
        let fed = Federation::new(3, Latency::None, 0);
        let rx1 = fed.handle(NodeId(1)).unwrap().subscribe(Topic(9));
        let rx2 = fed.handle(NodeId(2)).unwrap().subscribe(Topic(9));
        fed.handle(NodeId(0)).unwrap().publish(Topic(9), &b"cast"[..]);
        assert_eq!(rx1.recv_timeout(RECV).unwrap().source, NodeId(0));
        assert_eq!(rx2.recv_timeout(RECV).unwrap().source, NodeId(0));
    }

    #[test]
    fn topic_filtering() {
        let fed = Federation::new(2, Latency::None, 0);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        fed.handle(NodeId(0)).unwrap().publish(Topic(2), &b"other"[..]);
        assert!(rx.recv_timeout(StdDuration::from_millis(50)).is_err());
    }

    #[test]
    fn publish_without_consumers_is_dropped() {
        let fed = Federation::new(2, Latency::None, 0);
        let n = fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"void"[..]);
        assert_eq!(n, 0);
    }

    #[test]
    fn constant_latency_delays_delivery() {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_millis(30)), 0);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let start = Instant::now();
        fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"slow"[..]);
        rx.recv_timeout(RECV).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= StdDuration::from_millis(29), "elapsed {elapsed:?}");
        assert!(elapsed < StdDuration::from_millis(300), "elapsed {elapsed:?}");
    }

    #[test]
    fn latency_applies_only_across_nodes() {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_millis(200)), 0);
        let h0 = fed.handle(NodeId(0)).unwrap();
        let rx_local = h0.subscribe(Topic(1));
        h0.publish(Topic(1), &b"local"[..]);
        // Local consumers never wait on the network.
        assert!(rx_local.try_recv().is_ok());
    }

    #[test]
    fn fifo_under_constant_latency() {
        let fed = Federation::new(2, Latency::Constant(StdDuration::from_millis(5)), 0);
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let h = fed.handle(NodeId(0)).unwrap();
        for i in 0u8..20 {
            h.publish(Topic(1), vec![i]);
        }
        for i in 0u8..20 {
            let e = rx.recv_timeout(RECV).unwrap();
            assert_eq!(e.payload.as_ref(), &[i]);
        }
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let fed = Federation::new(2, Latency::None, 0);
        let h1 = fed.handle(NodeId(1)).unwrap();
        let a = h1.subscribe(Topic(1));
        let b = h1.subscribe(Topic(1));
        fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"dup"[..]);
        assert!(a.recv_timeout(RECV).is_ok());
        assert!(b.recv_timeout(RECV).is_ok());
    }

    #[test]
    fn host_ids_are_unique_and_shared_by_handles() {
        let a = Federation::new(2, Latency::None, 0);
        let b = Federation::new(2, Latency::None, 0);
        assert_ne!(a.host_id(), b.host_id(), "two federations, two hosts");
        assert_eq!(a.handle(NodeId(0)).unwrap().host_id(), a.host_id());
        assert_eq!(a.handle(NodeId(1)).unwrap().host_id(), a.host_id());
    }

    #[test]
    fn unknown_node_is_an_error() {
        let fed = Federation::new(2, Latency::None, 0);
        let err = fed.handle(NodeId(7)).unwrap_err();
        assert_eq!(err, UnknownNodeError { node: NodeId(7), node_count: 2 });
        assert!(err.to_string().contains("N7"));
    }

    #[test]
    fn shutdown_stops_forwarding_but_not_local() {
        let mut fed = Federation::new(2, Latency::None, 0);
        let h0 = fed.handle(NodeId(0)).unwrap();
        let local = h0.subscribe(Topic(1));
        let remote = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        fed.shutdown();
        h0.publish(Topic(1), &b"after"[..]);
        assert!(local.try_recv().is_ok());
        assert!(remote.recv_timeout(StdDuration::from_millis(50)).is_err());
    }

    #[test]
    fn uniform_latency_stays_in_range() {
        let fed = Federation::new(
            2,
            Latency::Uniform { lo: StdDuration::from_millis(5), hi: StdDuration::from_millis(15) },
            42,
        );
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        for _ in 0..5 {
            let start = Instant::now();
            fed.handle(NodeId(0)).unwrap().publish(Topic(1), &b"j"[..]);
            rx.recv_timeout(RECV).unwrap();
            let e = start.elapsed();
            assert!(e >= StdDuration::from_millis(4), "elapsed {e:?}");
            assert!(e < StdDuration::from_millis(500), "elapsed {e:?}");
        }
    }

    #[test]
    fn stress_many_messages_across_nodes() {
        let fed = Federation::new(4, Latency::Constant(StdDuration::from_micros(100)), 1);
        let receivers: Vec<_> =
            (1..4).map(|n| fed.handle(NodeId(n)).unwrap().subscribe(Topic(1))).collect();
        let h = fed.handle(NodeId(0)).unwrap();
        const N: usize = 500;
        for i in 0..N {
            h.publish(Topic(1), vec![(i % 256) as u8]);
        }
        for rx in &receivers {
            for _ in 0..N {
                rx.recv_timeout(RECV).expect("all messages delivered");
            }
        }
    }

    #[test]
    fn route_cache_tracks_new_subscriptions() {
        let fed = Federation::new(1, Latency::None, 0);
        let h = fed.handle(NodeId(0)).unwrap();
        let a = h.subscribe(Topic(1));
        assert_eq!(h.publish(Topic(1), &b"one"[..]), 1, "cache warmed on one subscriber");
        // A later subscription must invalidate the publisher's cache.
        let b = h.subscribe(Topic(1));
        assert_eq!(h.publish(Topic(1), &b"two"[..]), 2, "generation bump reaches the cache");
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1, "late subscriber sees only future events");
    }

    #[test]
    fn pure_local_publish_emits_no_parcels() {
        let fed = Federation::new(4, Latency::None, 0);
        let h0 = fed.handle(NodeId(0)).unwrap();
        let _local = h0.subscribe(Topic(1));
        // Other nodes registered on unrelated topics only.
        let _g1 = fed.handle(NodeId(1)).unwrap().subscribe(Topic(2));
        let _g2 = fed.handle(NodeId(2)).unwrap().subscribe(Topic(3));
        for _ in 0..10 {
            assert_eq!(h0.publish(Topic(1), &b"stay"[..]), 1);
        }
        let stats = fed.stats();
        assert_eq!(stats.remote_parcels, 0, "no remote work for a pure-local topic");
        assert_eq!(stats.local_deliveries, 10);
        assert_eq!(stats.events_published, 10);
    }

    #[test]
    fn mailbox_merges_topics_in_publish_order() {
        let fed = Federation::new(1, Latency::None, 0);
        let h = fed.handle(NodeId(0)).unwrap();
        let mailbox = h.subscribe_many(&[Topic(1), Topic(2), Topic(2)]);
        h.publish(Topic(1), &b"a"[..]);
        h.publish(Topic(2), &b"b"[..]);
        h.publish(Topic(1), &b"c"[..]);
        h.publish(Topic(3), &b"skip"[..]);
        let got: Vec<(Topic, Vec<u8>)> = (0..3)
            .map(|_| {
                let e = mailbox.try_recv().unwrap();
                (e.topic, e.payload.to_vec())
            })
            .collect();
        assert_eq!(
            got,
            vec![(Topic(1), b"a".to_vec()), (Topic(2), b"b".to_vec()), (Topic(1), b"c".to_vec()),]
        );
        assert!(mailbox.try_recv().is_err(), "unsubscribed topics never arrive");
    }

    #[test]
    fn same_seed_reproduces_sampled_latencies_and_delivery_order() {
        // The publish path consumes the jitter RNG once per remote
        // destination, in publish order — so with one remote subscriber,
        // the sampled delay stream is exactly `Latency::sample` on an
        // identically seeded RNG, and jittered parcels must arrive in the
        // order of those samples (a later publish with a smaller delay
        // overtakes). Predicting the order from the samples pins both
        // halves of the determinism contract at once.
        const SEED: u64 = 3;
        const N: usize = 8;
        let latency = Latency::Uniform { lo: StdDuration::ZERO, hi: StdDuration::from_millis(400) };

        let mut rng = StdRng::seed_from_u64(SEED);
        let delays: Vec<StdDuration> = (0..N).map(|_| latency.sample(&mut rng)).collect();
        // Deterministic flake guard: the seed's delays must be separated
        // by far more than publish-instant skew (µs) plus scheduler noise,
        // or predicting the order from them would be meaningless. This
        // assertion cannot flake — the samples are a pure function of the
        // seed; if it ever fires, pick a better seed.
        let mut sorted = delays.clone();
        sorted.sort();
        for pair in sorted.windows(2) {
            assert!(
                pair[1] - pair[0] >= StdDuration::from_millis(8),
                "seed {SEED} samples too close for a timing-robust order: {delays:?}"
            );
        }
        let mut expected: Vec<(StdDuration, u8)> = delays.iter().copied().zip(0u8..).collect();
        expected.sort();
        let expected: Vec<u8> = expected.into_iter().map(|(_, i)| i).collect();

        // The prediction also assumes the publish *instants* are close
        // together relative to the delay gaps. A descheduled publisher
        // (loaded CI) can stretch them past the 8 ms floor, so attempts
        // whose publish window exceeded half that floor are discarded and
        // retried rather than compared.
        let mut validated = false;
        for _ in 0..10 {
            let fed = Federation::new(2, latency, SEED);
            let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
            let h = fed.handle(NodeId(0)).unwrap();
            let publish_start = Instant::now();
            for i in 0..N {
                h.publish(Topic(1), vec![i as u8]);
            }
            let publish_window = publish_start.elapsed();
            let got: Vec<u8> = (0..N).map(|_| rx.recv_timeout(RECV).unwrap().payload[0]).collect();
            if publish_window > StdDuration::from_millis(4) {
                continue; // timing-polluted attempt: prediction not binding
            }
            assert_eq!(got, expected, "delivery order must encode the seeded delay stream");
            assert_ne!(got, (0..N as u8).collect::<Vec<u8>>(), "jitter actually reorders");
            validated = true;
            break;
        }
        assert!(validated, "no attempt had a clean publish window in 10 tries");
    }

    #[test]
    fn publish_batch_matches_per_event_publish() {
        let fed = Federation::new(3, Latency::None, 0);
        let local = fed.handle(NodeId(0)).unwrap().subscribe(Topic(1));
        let far = fed.handle(NodeId(1)).unwrap().subscribe_many(&[Topic(1), Topic(2)]);
        let h = fed.handle(NodeId(0)).unwrap();
        let batch: Vec<(Topic, bytes::Bytes)> = (0..6u8)
            .map(|i| (if i < 3 { Topic(1) } else { Topic(2) }, bytes::Bytes::from(vec![i])))
            .collect();
        let n = h.publish_batch(&batch);
        assert_eq!(n, 3 + 6, "3 local deliveries on topic 1, 6 parcels to node 1");
        for i in 0..3u8 {
            assert_eq!(local.try_recv().unwrap().payload.as_ref(), &[i]);
        }
        // The remote mailbox sees the full batch in publish order.
        for i in 0..6u8 {
            let e = far.recv_timeout(RECV).unwrap();
            assert_eq!(e.payload.as_ref(), &[i]);
            assert_eq!(e.source, NodeId(0));
        }
        let stats = fed.stats();
        assert_eq!(stats.events_published, 6);
        assert_eq!(stats.remote_parcels, 6);
        assert_eq!(h.publish_batch(&[]), 0, "empty batch publishes nothing");
    }

    #[test]
    fn dropped_subscriptions_are_reclaimed_on_the_next_change() {
        let fed = Federation::new(1, Latency::None, 0);
        let h = fed.handle(NodeId(0)).unwrap();
        // Churn: 64 dead mailboxes (the shape of a reconnecting bridge).
        for _ in 0..64 {
            drop(h.subscribe_many(&[Topic(1), Topic(2)]));
        }
        // The next subscription change purges them from the registry, so
        // a publish pays for live logs only.
        let live = h.subscribe(Topic(1));
        assert_eq!(h.publish(Topic(1), &b"x"[..]), 1);
        assert_eq!(live.len(), 1);
        let reg = fed.inner.registry.lock();
        assert_eq!(reg.subs.get(&(NodeId(0), Topic(1))).map(Vec::len), Some(1));
        assert!(!reg.subs.contains_key(&(NodeId(0), Topic(2))), "dead-only key removed");
    }

    #[test]
    fn bounded_subscriber_backpressure_is_local_and_observable() {
        let fed = Federation::new(1, Latency::None, 0);
        let h = fed.handle(NodeId(0)).unwrap();
        let slow = h.subscribe_bounded(Topic(1), 4);
        let fast = h.subscribe(Topic(1));
        for i in 0u8..32 {
            // Publisher never blocks regardless of the stalled subscriber.
            assert_eq!(h.publish(Topic(1), vec![i]), 2);
        }
        // The healthy subscriber got everything...
        for i in 0u8..32 {
            assert_eq!(fast.try_recv().unwrap().payload.as_ref(), &[i]);
        }
        // ...the stalled bounded one kept only the newest 4, with the
        // drops counted per receiver and in the federation stats.
        assert_eq!(slow.dropped(), 28);
        for i in 28u8..32 {
            assert_eq!(slow.try_recv().unwrap().payload.as_ref(), &[i]);
        }
        assert!(slow.try_recv().is_err());
        assert_eq!(fed.stats().events_dropped, 28);
    }
}
