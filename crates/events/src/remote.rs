//! TCP gateways between federations — the real-network analogue of TAO's
//! event-channel gateways.
//!
//! Within one process, [`crate::Federation`] moves events between nodes
//! through the in-process network. To span *processes* (or hosts), each
//! side dedicates one node as its **gateway** — exactly the role gateways
//! play in TAO's federated event service — and connects it to the peer
//! with [`listen`] / [`connect`]:
//!
//! * events published by any *other* local node on a forwarded topic are
//!   sent to the peer;
//! * events arriving from the peer are published locally from the gateway
//!   node (so local consumers see them like any other event).
//!
//! Loop prevention relies on the gateway node being dedicated: events
//! whose source is the gateway itself are not forwarded back out, so a
//! bridged event never echoes.
//!
//! The wire format is the versioned binary codec of [`crate::wire`]
//! (4-byte length prefix, version byte, topic, raw payload bytes); frames
//! from peers still speaking the legacy JSON format decode transparently.
//!
//! Both directions of a bridge are batched. The forwarding side rides the
//! event fast path: all bridged topics feed **one** gateway mailbox
//! (`subscribe_many`), drained by a single forwarder thread that coalesces
//! every queued event into one framed buffer and issues one `write_all`
//! per batch — a burst of *n* parcels costs one syscall, not *n*. The
//! reader mirrors it: each socket read feeds a [`wire::FrameDecoder`],
//! every complete buffered frame is drained at once (payloads as
//! zero-copy views of the batch buffer), and the whole batch is
//! republished through **one** locked pass
//! ([`ChannelHandle::publish_batch`]).
//!
//! Lifecycle: a [`BridgeHandle`] exposes its real [`BridgeState`]
//! (`Connecting` → `Connected` → `Closed { reason }`). Any failure — a
//! forwarder write error, a peer disconnect, a corrupt frame — tears the
//! whole link down in both directions (stop flag, `Shutdown::Both`,
//! shared stream cleared) so no thread is ever left blocked on a half-open
//! socket, and is accounted in [`crate::FederationStats`]
//! (`bridge_rx_errors`, `bridge_disconnects`, `bridge_tx_dropped`).
//!
//! # Examples
//!
//! ```
//! use rtcm_events::{remote, Federation, Latency, NodeId, Topic};
//!
//! // Two "hosts", each a federation; node 0 is each side's gateway.
//! let a = Federation::new(2, Latency::None, 0);
//! let b = Federation::new(2, Latency::None, 0);
//! let topics = vec![Topic(7)];
//!
//! let (addr, _server) = remote::listen(&a, NodeId(0), "127.0.0.1:0", topics.clone())?;
//! let _client = remote::connect(&b, NodeId(0), addr, topics)?;
//!
//! let rx = a.handle(NodeId(1))?.subscribe(Topic(7));
//! b.handle(NodeId(1))?.publish(Topic(7), &b"across hosts"[..]);
//! let event = rx.recv_timeout(std::time::Duration::from_secs(5))?;
//! assert_eq!(event.payload.as_ref(), b"across hosts");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::event::{Event, NodeId, Topic};
use crate::fanout::EventReceiver;
use crate::federation::{ChannelHandle, Federation};
use crate::wire::{self, FrameDecoder};

/// Most events coalesced into one framed write (bounds batch latency and
/// buffer growth under sustained floods).
const MAX_BATCH: usize = 128;

/// Socket read chunk size for the batching reader.
const READ_CHUNK: usize = 64 * 1024;

/// Why a bridge link closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeCloseReason {
    /// The local side shut the bridge down.
    Shutdown,
    /// The peer disconnected (EOF, reset, or a read error).
    PeerDisconnected,
    /// Writing to the peer failed; the link was torn down in both
    /// directions so the reader cannot block on a half-open socket.
    WriteFailed,
    /// A corrupt, oversized or undecodable frame arrived; framing is lost,
    /// so the link closed (counted in `bridge_rx_errors`).
    CorruptFrame,
}

/// Observable lifecycle of a bridge link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeState {
    /// Listening / waiting for the peer to connect.
    Connecting,
    /// The peer connection is established and both pumps are running.
    Connected,
    /// The link is gone; `reason` records the *first* cause.
    Closed {
        /// Why the link closed.
        reason: BridgeCloseReason,
    },
}

/// Shared link state: the stream (for shutdown from any thread) plus the
/// lifecycle state machine.
struct LinkState {
    stream: Option<TcpStream>,
    state: BridgeState,
}

type SharedLink = Arc<Mutex<LinkState>>;

/// Tears the link down from either direction: raises the stop flag, shuts
/// the socket both ways (unblocking a reader parked in `read`), clears the
/// shared stream so `is_connected()` turns false, and records the first
/// close reason.
fn close_link(link: &SharedLink, stop: &AtomicBool, reason: BridgeCloseReason) {
    stop.store(true, Ordering::SeqCst);
    let mut l = link.lock();
    if let Some(stream) = l.stream.take() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    if !matches!(l.state, BridgeState::Closed { .. }) {
        l.state = BridgeState::Closed { reason };
    }
}

/// A running gateway link; dropping it closes the connection and joins the
/// forwarding threads.
pub struct BridgeHandle {
    link: SharedLink,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for BridgeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let l = self.link.lock();
        let peer = l.stream.as_ref().and_then(|s| s.peer_addr().ok());
        f.debug_struct("BridgeHandle").field("state", &l.state).field("peer", &peer).finish()
    }
}

impl BridgeHandle {
    /// The peer's socket address, while connected.
    #[must_use]
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.link.lock().stream.as_ref().and_then(|s| s.peer_addr().ok())
    }

    /// True while the link is live: a peer is connected **and** neither
    /// side has failed. Turns false as soon as the link tears down, even
    /// if this handle has not been dropped.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        matches!(self.link.lock().state, BridgeState::Connected)
    }

    /// The link's current lifecycle state.
    #[must_use]
    pub fn state(&self) -> BridgeState {
        self.link.lock().state
    }

    /// Closes the link and waits for the forwarding threads.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        close_link(&self.link, &self.stop, BridgeCloseReason::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for BridgeHandle {
    fn drop(&mut self) {
        self.close();
    }
}

/// Accepts one peer connection on `addr` and bridges `topics` through the
/// gateway node. With port 0 the OS picks a free port; the bound address is
/// returned immediately and the accept happens on a background thread, so
/// listen-then-connect works within one process.
///
/// # Errors
///
/// I/O errors from binding. A peer never connecting just leaves the bridge
/// in [`BridgeState::Connecting`] until the handle is dropped.
pub fn listen(
    federation: &Federation,
    gateway: NodeId,
    addr: impl ToSocketAddrs,
    topics: Vec<Topic>,
) -> std::io::Result<(SocketAddr, BridgeHandle)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let handle = federation
        .handle(gateway)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;

    let stop = Arc::new(AtomicBool::new(false));
    let link: SharedLink =
        Arc::new(Mutex::new(LinkState { stream: None, state: BridgeState::Connecting }));
    // Subscribe *now*, on the caller's thread: events published before the
    // peer connects queue up and are forwarded once the link is live.
    let mailbox = handle.subscribe_many(&topics);
    let accept_stop = Arc::clone(&stop);
    let accept_link = Arc::clone(&link);
    let acceptor = std::thread::Builder::new()
        .name("rtcm-events-accept".into())
        .spawn(move || {
            // Poll-accept so shutdown-before-connect cannot hang.
            let peer = loop {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((s, _)) => break s,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            };
            if peer.set_nonblocking(false).is_err() {
                return;
            }
            if let Ok(clone) = peer.try_clone() {
                let mut l = accept_link.lock();
                l.stream = Some(clone);
                l.state = BridgeState::Connected;
            }
            run_bridge(&handle, gateway, peer, mailbox, &accept_stop, &accept_link);
        })
        .expect("spawn acceptor");

    Ok((local, BridgeHandle { link, stop, threads: vec![acceptor] }))
}

/// Connects to a listening gateway and bridges `topics` through the local
/// gateway node.
///
/// # Errors
///
/// I/O errors from connecting.
pub fn connect(
    federation: &Federation,
    gateway: NodeId,
    addr: impl ToSocketAddrs,
    topics: Vec<Topic>,
) -> std::io::Result<BridgeHandle> {
    let stream = TcpStream::connect(addr)?;
    let handle = federation
        .handle(gateway)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let stop = Arc::new(AtomicBool::new(false));
    // Subscribe on the caller's thread so no publish can race past an
    // unsubscribed forwarder.
    let mailbox = handle.subscribe_many(&topics);
    let bridge_stream = stream.try_clone()?;
    let link: SharedLink =
        Arc::new(Mutex::new(LinkState { stream: Some(stream), state: BridgeState::Connected }));
    let bridge_stop = Arc::clone(&stop);
    let bridge_link = Arc::clone(&link);
    let thread = std::thread::Builder::new()
        .name("rtcm-events-bridge".into())
        .spawn(move || {
            run_bridge(&handle, gateway, bridge_stream, mailbox, &bridge_stop, &bridge_link);
        })
        .expect("spawn bridge");
    Ok(BridgeHandle { link, stop, threads: vec![thread] })
}

/// Appends one binary frame for `event` to `buf` (skipping gateway-sourced
/// events, which came from the peer and would loop). Returns the number of
/// events dropped for being oversized (0 or 1) — never panics.
fn append_event(buf: &mut Vec<u8>, gateway: NodeId, event: &Event) -> u64 {
    if event.source == gateway {
        return 0;
    }
    match wire::append_frame(buf, event.topic, &event.payload) {
        Ok(()) => 0,
        // Oversized payload: drop this event and count it; the link (and
        // the forwarder thread) stays up.
        Err(_) => 1,
    }
}

/// Runs both directions of one bridge: the batching forwarder (local
/// mailbox → peer, one coalesced write per drained batch) and the batching
/// reader (peer → one `publish_batch` per drained frame batch). Any
/// failure on either side tears the whole link down.
fn run_bridge(
    handle: &ChannelHandle,
    gateway: NodeId,
    stream: TcpStream,
    mailbox: EventReceiver,
    stop: &Arc<AtomicBool>,
    link: &SharedLink,
) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            close_link(link, stop, BridgeCloseReason::PeerDisconnected);
            return;
        }
    };
    let fwd_stop = Arc::clone(stop);
    let fwd_link = Arc::clone(link);
    let fwd_handle = handle.clone();
    let forwarder = std::thread::Builder::new()
        .name("rtcm-events-fwd".into())
        .spawn(move || {
            let mut buf: Vec<u8> = Vec::with_capacity(4096);
            while !fwd_stop.load(Ordering::SeqCst) {
                let Ok(event) = mailbox.recv_timeout(std::time::Duration::from_millis(50)) else {
                    continue;
                };
                buf.clear();
                let mut tx_dropped = append_event(&mut buf, gateway, &event);
                // Coalesce everything already queued into the same write.
                let mut batched = 1;
                while batched < MAX_BATCH {
                    match mailbox.try_recv() {
                        Ok(event) => {
                            tx_dropped += append_event(&mut buf, gateway, &event);
                            batched += 1;
                        }
                        Err(_) => break,
                    }
                }
                if tx_dropped > 0 {
                    fwd_handle
                        .counters()
                        .bridge_tx_dropped
                        .fetch_add(tx_dropped, Ordering::Relaxed);
                }
                if buf.is_empty() {
                    continue; // all gateway-sourced (no echo) or dropped
                }
                if writer.write_all(&buf).is_err() {
                    // Propagate the failure to the reader too: without
                    // this, the reader would stay blocked in `read` on a
                    // half-open link forever.
                    close_link(&fwd_link, &fwd_stop, BridgeCloseReason::WriteFailed);
                    return;
                }
            }
        })
        .expect("spawn forwarder");

    // Batching reader loop: peer → drained frame batch → one locked
    // republish pass.
    let mut reader = stream;
    let mut decoder = FrameDecoder::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let reason = loop {
        match reader.read(&mut chunk) {
            Ok(0) => {
                break if stop.load(Ordering::SeqCst) {
                    BridgeCloseReason::Shutdown
                } else {
                    BridgeCloseReason::PeerDisconnected
                };
            }
            Ok(n) => {
                decoder.extend(&chunk[..n]);
                let drained = decoder.drain();
                if !drained.frames.is_empty() {
                    let batch: Vec<(Topic, Bytes)> =
                        drained.frames.into_iter().map(|f| (f.topic, f.payload)).collect();
                    handle.publish_batch(&batch);
                }
                if drained.fatal.is_some() {
                    handle.counters().bridge_rx_errors.fetch_add(1, Ordering::Relaxed);
                    break BridgeCloseReason::CorruptFrame;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                break if stop.load(Ordering::SeqCst) {
                    BridgeCloseReason::Shutdown
                } else {
                    BridgeCloseReason::PeerDisconnected
                };
            }
        }
    };
    close_link(link, stop, reason);
    // One disconnect per established link, counted where the link's pumps
    // end (covers peer loss, write failure, corrupt frames and shutdown).
    handle.counters().bridge_disconnects.fetch_add(1, Ordering::Relaxed);
    let _ = forwarder.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::Latency;
    use std::time::{Duration as StdDuration, Instant};

    const RECV: StdDuration = StdDuration::from_secs(5);

    fn pair(topics: Vec<Topic>) -> (Federation, Federation, BridgeHandle, BridgeHandle) {
        let a = Federation::new(3, Latency::None, 0);
        let b = Federation::new(3, Latency::None, 0);
        let (addr, server) = listen(&a, NodeId(0), "127.0.0.1:0", topics.clone()).expect("listen");
        let client = connect(&b, NodeId(0), addr, topics).expect("connect");
        (a, b, server, client)
    }

    /// Polls `cond` for up to 5 s (the bridge teardown paths are
    /// asynchronous: reader wakeup + close).
    fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + RECV;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(StdDuration::from_millis(5));
        }
        false
    }

    #[test]
    fn events_cross_the_bridge_both_ways() {
        let (a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let on_b = b.handle(NodeId(1)).unwrap().subscribe(Topic(1));

        b.handle(NodeId(2)).unwrap().publish(Topic(1), &b"from-b"[..]);
        let got = on_a.recv_timeout(RECV).unwrap();
        assert_eq!(got.payload.as_ref(), b"from-b");
        assert_eq!(got.source, NodeId(0), "arrives via the gateway");
        // B's own subscriber first sees its local copy...
        assert_eq!(on_b.recv_timeout(RECV).unwrap().payload.as_ref(), b"from-b");

        a.handle(NodeId(2)).unwrap().publish(Topic(1), &b"from-a"[..]);
        // ...then the bridged event from A.
        let got = on_b.recv_timeout(RECV).unwrap();
        assert_eq!(got.payload.as_ref(), b"from-a");
        assert_eq!(got.source, NodeId(0), "arrives via the gateway");
    }

    #[test]
    fn unforwarded_topics_stay_local() {
        let (a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe(Topic(9));
        b.handle(NodeId(1)).unwrap().publish(Topic(9), &b"local-only"[..]);
        assert!(on_a.recv_timeout(StdDuration::from_millis(100)).is_err());
    }

    #[test]
    fn bridged_events_do_not_echo() {
        let (_a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_b = b.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        b.handle(NodeId(2)).unwrap().publish(Topic(1), &b"once"[..]);
        // The publisher's own federation delivers exactly one copy...
        assert!(on_b.recv_timeout(RECV).is_ok());
        // ...and no echoed duplicate arrives from the bridge.
        assert!(on_b.recv_timeout(StdDuration::from_millis(200)).is_err());
    }

    #[test]
    fn many_messages_in_order() {
        let (a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let h = b.handle(NodeId(2)).unwrap();
        for i in 0u8..100 {
            h.publish(Topic(1), vec![i]);
        }
        for i in 0u8..100 {
            let got = on_a.recv_timeout(RECV).unwrap();
            assert_eq!(got.payload.as_ref(), &[i]);
        }
    }

    #[test]
    fn multi_topic_bridges_preserve_cross_topic_order() {
        // One mailbox forwards both topics, so a burst interleaving them
        // arrives in the exact publish order (the old per-topic forwarder
        // threads could not promise this).
        let (a, b, _s, _c) = pair(vec![Topic(1), Topic(2)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe_many(&[Topic(1), Topic(2)]);
        let h = b.handle(NodeId(2)).unwrap();
        for i in 0u8..40 {
            let topic = if i % 2 == 0 { Topic(1) } else { Topic(2) };
            h.publish(topic, vec![i]);
        }
        for i in 0u8..40 {
            let got = on_a.recv_timeout(RECV).unwrap();
            assert_eq!(got.payload.as_ref(), &[i]);
            assert_eq!(got.topic, if i % 2 == 0 { Topic(1) } else { Topic(2) });
        }
    }

    #[test]
    fn shutdown_is_clean() {
        let (a, b, server, client) = pair(vec![Topic(1)]);
        client.shutdown();
        server.shutdown();
        // Federations still work locally after the bridge is gone.
        let rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(2));
        a.handle(NodeId(1)).unwrap().publish(Topic(2), &b"alive"[..]);
        assert!(rx.try_recv().is_ok());
        drop(b);
    }

    #[test]
    fn shutdown_unblocks_an_idle_reader_promptly() {
        // The reader sits blocked in `read` on an idle link; shutdown must
        // unblock it (Shutdown::Both) and join within a bounded time, not
        // hang on the blocked thread.
        let (_a, _b, server, client) = pair(vec![Topic(1)]);
        assert!(wait_for(|| client.is_connected() && server.is_connected()));
        let start = Instant::now();
        client.shutdown();
        assert!(start.elapsed() < StdDuration::from_secs(2), "shutdown joined promptly");
    }

    #[test]
    fn is_connected_turns_false_after_peer_disconnect() {
        let (a, _b, server, client) = pair(vec![Topic(1)]);
        assert!(wait_for(|| server.is_connected()), "link established");
        assert_eq!(client.state(), BridgeState::Connected);

        // The peer goes away; the old bridge kept reporting `true` here
        // forever because the shared stream was never cleared.
        client.shutdown();
        assert!(wait_for(|| !server.is_connected()), "server notices the disconnect");
        assert_eq!(
            server.state(),
            BridgeState::Closed { reason: BridgeCloseReason::PeerDisconnected }
        );
        assert!(wait_for(|| a.stats().bridge_disconnects == 1));
        assert_eq!(a.stats().bridge_rx_errors, 0, "a clean EOF is not an rx error");
    }

    #[test]
    fn listener_without_peer_reports_connecting() {
        let fed = Federation::new(2, Latency::None, 0);
        let (_addr, server) = listen(&fed, NodeId(0), "127.0.0.1:0", vec![Topic(1)]).unwrap();
        assert_eq!(server.state(), BridgeState::Connecting);
        assert!(!server.is_connected(), "no peer yet");
    }

    #[test]
    fn corrupt_frame_closes_the_link_and_is_counted() {
        let fed = Federation::new(2, Latency::None, 0);
        let (addr, server) = listen(&fed, NodeId(0), "127.0.0.1:0", vec![Topic(1)]).unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        assert!(wait_for(|| server.is_connected()));

        // A well-framed body that is neither binary (0x01) nor JSON ('{').
        let body = [0xEEu8, 1, 2, 3];
        raw.write_all(&4u32.to_be_bytes()).unwrap();
        raw.write_all(&body).unwrap();

        assert!(wait_for(|| fed.stats().bridge_rx_errors == 1), "rx error counted");
        assert!(wait_for(|| !server.is_connected()));
        assert_eq!(server.state(), BridgeState::Closed { reason: BridgeCloseReason::CorruptFrame });
        assert_eq!(fed.stats().bridge_disconnects, 1);
    }

    #[test]
    fn corrupt_length_prefix_closes_the_link_and_is_counted() {
        let fed = Federation::new(2, Latency::None, 0);
        let (addr, server) = listen(&fed, NodeId(0), "127.0.0.1:0", vec![Topic(1)]).unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        assert!(wait_for(|| server.is_connected()));

        // A hostile length prefix far beyond MAX_FRAME.
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();

        assert!(wait_for(|| fed.stats().bridge_rx_errors == 1), "rx error counted");
        assert!(wait_for(|| !server.is_connected()));
        assert_eq!(server.state(), BridgeState::Closed { reason: BridgeCloseReason::CorruptFrame });
    }

    #[test]
    fn mid_frame_disconnect_is_a_disconnect_not_an_rx_error() {
        let fed = Federation::new(2, Latency::None, 0);
        let (addr, server) = listen(&fed, NodeId(0), "127.0.0.1:0", vec![Topic(1)]).unwrap();
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let mut raw = TcpStream::connect(addr).unwrap();
        assert!(wait_for(|| server.is_connected()));

        // Half a frame: the length prefix promises 9 body bytes, only 3
        // arrive before the socket dies mid-frame.
        raw.write_all(&9u32.to_be_bytes()).unwrap();
        raw.write_all(&[wire::WIRE_VERSION, 0, 0]).unwrap();
        drop(raw);

        assert!(wait_for(|| !server.is_connected()));
        assert_eq!(
            server.state(),
            BridgeState::Closed { reason: BridgeCloseReason::PeerDisconnected }
        );
        let stats = fed.stats();
        assert_eq!(stats.bridge_rx_errors, 0, "a truncated link is not a decode error");
        assert_eq!(stats.bridge_disconnects, 1);
        assert!(rx.try_recv().is_err(), "the partial frame never becomes an event");
    }

    #[test]
    fn oversized_outbound_payload_is_dropped_not_a_panic() {
        let (a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));

        // Larger than the wire frame limit: the old forwarder died on
        // `expect("sane frame size")`; now the event is dropped + counted
        // and the link stays up.
        let huge = vec![0u8; wire::MAX_FRAME - 4];
        b.handle(NodeId(2)).unwrap().publish(Topic(1), huge);
        assert!(wait_for(|| b.stats().bridge_tx_dropped == 1), "oversized drop counted");

        // The forwarder thread survived: a normal event still crosses.
        b.handle(NodeId(2)).unwrap().publish(Topic(1), &b"still alive"[..]);
        assert_eq!(on_a.recv_timeout(RECV).unwrap().payload.as_ref(), b"still alive");
    }

    #[test]
    fn write_failure_tears_down_the_whole_link() {
        // The peer accepts, receives data it never reads, then slams the
        // socket (on Linux: RST). Subsequent writes on our side fail; the
        // old forwarder returned silently and left the reader blocked in
        // `read_exact` forever — the bridge must now close completely:
        // state Closed, is_connected false, and shutdown joins promptly.
        let fed = Federation::new(2, Latency::None, 0);
        let raw_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = raw_listener.local_addr().unwrap();
        let client = connect(&fed, NodeId(0), addr, vec![Topic(1)]).unwrap();
        let (peer, _) = raw_listener.accept().unwrap();

        let h = fed.handle(NodeId(1)).unwrap();
        h.publish(Topic(1), &b"lands in the peer's buffer"[..]);
        std::thread::sleep(StdDuration::from_millis(50));
        drop(peer); // unread data → RST

        // Keep publishing until a write trips over the dead socket.
        assert!(
            wait_for(|| {
                h.publish(Topic(1), &b"poke"[..]);
                !client.is_connected()
            }),
            "link fully closed after the write failure"
        );
        assert!(matches!(client.state(), BridgeState::Closed { .. }));
        assert!(wait_for(|| fed.stats().bridge_disconnects == 1));

        let start = Instant::now();
        client.shutdown();
        assert!(start.elapsed() < StdDuration::from_secs(2), "no thread left blocked");
    }

    #[test]
    fn legacy_json_peer_interoperates() {
        // A peer still speaking PR 5's JSON wire format: its frames decode
        // transparently and surface as normal events.
        let fed = Federation::new(2, Latency::None, 0);
        let (addr, server) = listen(&fed, NodeId(0), "127.0.0.1:0", vec![Topic(7)]).unwrap();
        let rx = fed.handle(NodeId(1)).unwrap().subscribe(Topic(7));
        let mut raw = TcpStream::connect(addr).unwrap();
        assert!(wait_for(|| server.is_connected()));

        let mut frame = Vec::new();
        wire::append_frame_json(&mut frame, Topic(7), b"old wire").unwrap();
        raw.write_all(&frame).unwrap();

        let got = rx.recv_timeout(RECV).unwrap();
        assert_eq!(got.payload.as_ref(), b"old wire");
        assert_eq!(got.source, NodeId(0), "published from the gateway");
    }

    #[test]
    fn raw_peer_reads_binary_frames() {
        // The forwarder's outbound bytes are the documented binary format:
        // a raw socket can decode them with the public wire decoder.
        let fed = Federation::new(2, Latency::None, 0);
        let (addr, server) = listen(&fed, NodeId(0), "127.0.0.1:0", vec![Topic(3)]).unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        assert!(wait_for(|| server.is_connected()));

        fed.handle(NodeId(1)).unwrap().publish(Topic(3), &b"binary out"[..]);

        let mut decoder = FrameDecoder::new();
        let mut chunk = [0u8; 1024];
        let frame = loop {
            let n = raw.read(&mut chunk).unwrap();
            assert!(n > 0, "peer closed before the frame arrived");
            decoder.extend(&chunk[..n]);
            let mut out = decoder.drain();
            assert!(out.fatal.is_none());
            if let Some(f) = out.frames.pop() {
                break f;
            }
        };
        assert_eq!(frame.topic, Topic(3));
        assert_eq!(frame.payload.as_ref(), b"binary out");
    }
}
