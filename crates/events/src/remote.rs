//! TCP gateways between federations — the real-network analogue of TAO's
//! event-channel gateways.
//!
//! Within one process, [`crate::Federation`] moves events between nodes
//! through the in-process network. To span *processes* (or hosts), each
//! side dedicates one node as its **gateway** — exactly the role gateways
//! play in TAO's federated event service — and connects it to the peer
//! with [`listen`] / [`connect`]:
//!
//! * events published by any *other* local node on a forwarded topic are
//!   sent to the peer;
//! * events arriving from the peer are published locally from the gateway
//!   node (so local consumers see them like any other event).
//!
//! Loop prevention relies on the gateway node being dedicated: events
//! whose source is the gateway itself are not forwarded back out, so a
//! bridged event never echoes. Wire format: 4-byte big-endian length
//! prefix + JSON (`{topic, payload}`), chosen for debuggability at
//! control-plane rates.
//!
//! The forwarding side rides the event fast path: all bridged topics feed
//! **one** gateway mailbox (`subscribe_many`), drained by a single
//! forwarder thread that coalesces every queued event into one framed
//! buffer and issues one `write_all` per batch — a burst of *n* parcels
//! costs one syscall, not *n*. The wire format is unchanged (a batch is
//! just adjacent frames), so either side of a bridge may batch or not.
//!
//! # Examples
//!
//! ```
//! use rtcm_events::{remote, Federation, Latency, NodeId, Topic};
//!
//! // Two "hosts", each a federation; node 0 is each side's gateway.
//! let a = Federation::new(2, Latency::None, 0);
//! let b = Federation::new(2, Latency::None, 0);
//! let topics = vec![Topic(7)];
//!
//! let (addr, _server) = remote::listen(&a, NodeId(0), "127.0.0.1:0", topics.clone())?;
//! let _client = remote::connect(&b, NodeId(0), addr, topics)?;
//!
//! let rx = a.handle(NodeId(1))?.subscribe(Topic(7));
//! b.handle(NodeId(1))?.publish(Topic(7), &b"across hosts"[..]);
//! let event = rx.recv_timeout(std::time::Duration::from_secs(5))?;
//! assert_eq!(event.payload.as_ref(), b"across hosts");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::event::{Event, NodeId, Topic};
use crate::fanout::EventReceiver;
use crate::federation::{ChannelHandle, Federation};

#[derive(Debug, Serialize, Deserialize)]
struct WireEvent {
    topic: u32,
    payload: Vec<u8>,
}

/// Most events coalesced into one framed write (bounds batch latency and
/// buffer growth under sustained floods).
const MAX_BATCH: usize = 128;

type SharedStream = Arc<Mutex<Option<TcpStream>>>;

/// A running gateway link; dropping it closes the connection and joins the
/// forwarding threads.
pub struct BridgeHandle {
    stream: SharedStream,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for BridgeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let peer = self.stream.lock().as_ref().and_then(|s| s.peer_addr().ok());
        f.debug_struct("BridgeHandle").field("peer", &peer).finish()
    }
}

impl BridgeHandle {
    /// The peer's socket address, once connected.
    #[must_use]
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.lock().as_ref().and_then(|s| s.peer_addr().ok())
    }

    /// Returns true once a peer connection is established.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stream.lock().is_some()
    }

    /// Closes the link and waits for the forwarding threads.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(stream) = self.stream.lock().as_ref() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for BridgeHandle {
    fn drop(&mut self) {
        self.close();
    }
}

/// Accepts one peer connection on `addr` and bridges `topics` through the
/// gateway node. With port 0 the OS picks a free port; the bound address is
/// returned immediately and the accept happens on a background thread, so
/// listen-then-connect works within one process.
///
/// # Errors
///
/// I/O errors from binding. A peer never connecting just leaves the bridge
/// idle until the handle is dropped.
pub fn listen(
    federation: &Federation,
    gateway: NodeId,
    addr: impl ToSocketAddrs,
    topics: Vec<Topic>,
) -> std::io::Result<(SocketAddr, BridgeHandle)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let handle = federation
        .handle(gateway)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;

    let stop = Arc::new(AtomicBool::new(false));
    let stream: SharedStream = Arc::new(Mutex::new(None));
    // Subscribe *now*, on the caller's thread: events published before the
    // peer connects queue up and are forwarded once the link is live.
    let mailbox = handle.subscribe_many(&topics);
    let accept_stop = Arc::clone(&stop);
    let accept_stream = Arc::clone(&stream);
    let acceptor = std::thread::Builder::new()
        .name("rtcm-events-accept".into())
        .spawn(move || {
            // Poll-accept so shutdown-before-connect cannot hang.
            let peer = loop {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((s, _)) => break s,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            };
            if peer.set_nonblocking(false).is_err() {
                return;
            }
            if let Ok(clone) = peer.try_clone() {
                *accept_stream.lock() = Some(clone);
            }
            run_bridge(&handle, gateway, peer, mailbox, &accept_stop);
        })
        .expect("spawn acceptor");

    Ok((local, BridgeHandle { stream, stop, threads: vec![acceptor] }))
}

/// Connects to a listening gateway and bridges `topics` through the local
/// gateway node.
///
/// # Errors
///
/// I/O errors from connecting.
pub fn connect(
    federation: &Federation,
    gateway: NodeId,
    addr: impl ToSocketAddrs,
    topics: Vec<Topic>,
) -> std::io::Result<BridgeHandle> {
    let stream = TcpStream::connect(addr)?;
    let handle = federation
        .handle(gateway)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let stop = Arc::new(AtomicBool::new(false));
    // Subscribe on the caller's thread so no publish can race past an
    // unsubscribed forwarder.
    let mailbox = handle.subscribe_many(&topics);
    let bridge_stream = stream.try_clone()?;
    let bridge_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("rtcm-events-bridge".into())
        .spawn(move || run_bridge(&handle, gateway, bridge_stream, mailbox, &bridge_stop))
        .expect("spawn bridge");
    Ok(BridgeHandle { stream: Arc::new(Mutex::new(Some(stream))), stop, threads: vec![thread] })
}

/// Appends one length-prefixed frame for `event` to `buf` (skipping
/// gateway-sourced events, which came from the peer and would loop).
fn append_frame(buf: &mut Vec<u8>, gateway: NodeId, event: &Event) {
    if event.source == gateway {
        return;
    }
    let wire = WireEvent { topic: event.topic.0, payload: event.payload.to_vec() };
    let frame = serde_json::to_vec(&wire).expect("plain data");
    let len = u32::try_from(frame.len()).expect("sane frame size");
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&frame);
}

/// Runs both directions of one bridge: the batching forwarder (local
/// mailbox → peer, one coalesced write per drained batch) and the reader
/// loop (peer → local).
fn run_bridge(
    handle: &ChannelHandle,
    gateway: NodeId,
    stream: TcpStream,
    mailbox: EventReceiver,
    stop: &Arc<AtomicBool>,
) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let fwd_stop = Arc::clone(stop);
    let forwarder = std::thread::Builder::new()
        .name("rtcm-events-fwd".into())
        .spawn(move || {
            let mut buf: Vec<u8> = Vec::with_capacity(4096);
            while !fwd_stop.load(Ordering::SeqCst) {
                let Ok(event) = mailbox.recv_timeout(std::time::Duration::from_millis(50)) else {
                    continue;
                };
                buf.clear();
                append_frame(&mut buf, gateway, &event);
                // Coalesce everything already queued into the same write.
                let mut batched = 1;
                while batched < MAX_BATCH {
                    match mailbox.try_recv() {
                        Ok(event) => {
                            append_frame(&mut buf, gateway, &event);
                            batched += 1;
                        }
                        Err(_) => break,
                    }
                }
                if buf.is_empty() {
                    continue; // everything was gateway-sourced (no echo)
                }
                if writer.write_all(&buf).is_err() {
                    return;
                }
            }
        })
        .expect("spawn forwarder");

    // Reader loop: peer → local publish.
    let mut reader = stream;
    loop {
        let mut len_buf = [0u8; 4];
        if reader.read_exact(&mut len_buf).is_err() {
            break;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > 16 * 1024 * 1024 {
            break; // corrupt or hostile frame
        }
        let mut frame = vec![0u8; len];
        if reader.read_exact(&mut frame).is_err() {
            break;
        }
        let Ok(wire) = serde_json::from_slice::<WireEvent>(&frame) else { break };
        handle.publish(Topic(wire.topic), wire.payload);
    }
    stop.store(true, Ordering::SeqCst);
    let _ = forwarder.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::Latency;
    use std::time::Duration as StdDuration;

    const RECV: StdDuration = StdDuration::from_secs(5);

    fn pair(topics: Vec<Topic>) -> (Federation, Federation, BridgeHandle, BridgeHandle) {
        let a = Federation::new(3, Latency::None, 0);
        let b = Federation::new(3, Latency::None, 0);
        let (addr, server) = listen(&a, NodeId(0), "127.0.0.1:0", topics.clone()).expect("listen");
        let client = connect(&b, NodeId(0), addr, topics).expect("connect");
        (a, b, server, client)
    }

    #[test]
    fn events_cross_the_bridge_both_ways() {
        let (a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let on_b = b.handle(NodeId(1)).unwrap().subscribe(Topic(1));

        b.handle(NodeId(2)).unwrap().publish(Topic(1), &b"from-b"[..]);
        let got = on_a.recv_timeout(RECV).unwrap();
        assert_eq!(got.payload.as_ref(), b"from-b");
        assert_eq!(got.source, NodeId(0), "arrives via the gateway");
        // B's own subscriber first sees its local copy...
        assert_eq!(on_b.recv_timeout(RECV).unwrap().payload.as_ref(), b"from-b");

        a.handle(NodeId(2)).unwrap().publish(Topic(1), &b"from-a"[..]);
        // ...then the bridged event from A.
        let got = on_b.recv_timeout(RECV).unwrap();
        assert_eq!(got.payload.as_ref(), b"from-a");
        assert_eq!(got.source, NodeId(0), "arrives via the gateway");
    }

    #[test]
    fn unforwarded_topics_stay_local() {
        let (a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe(Topic(9));
        b.handle(NodeId(1)).unwrap().publish(Topic(9), &b"local-only"[..]);
        assert!(on_a.recv_timeout(StdDuration::from_millis(100)).is_err());
    }

    #[test]
    fn bridged_events_do_not_echo() {
        let (_a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_b = b.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        b.handle(NodeId(2)).unwrap().publish(Topic(1), &b"once"[..]);
        // The publisher's own federation delivers exactly one copy...
        assert!(on_b.recv_timeout(RECV).is_ok());
        // ...and no echoed duplicate arrives from the bridge.
        assert!(on_b.recv_timeout(StdDuration::from_millis(200)).is_err());
    }

    #[test]
    fn many_messages_in_order() {
        let (a, b, _s, _c) = pair(vec![Topic(1)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe(Topic(1));
        let h = b.handle(NodeId(2)).unwrap();
        for i in 0u8..100 {
            h.publish(Topic(1), vec![i]);
        }
        for i in 0u8..100 {
            let got = on_a.recv_timeout(RECV).unwrap();
            assert_eq!(got.payload.as_ref(), &[i]);
        }
    }

    #[test]
    fn multi_topic_bridges_preserve_cross_topic_order() {
        // One mailbox forwards both topics, so a burst interleaving them
        // arrives in the exact publish order (the old per-topic forwarder
        // threads could not promise this).
        let (a, b, _s, _c) = pair(vec![Topic(1), Topic(2)]);
        let on_a = a.handle(NodeId(1)).unwrap().subscribe_many(&[Topic(1), Topic(2)]);
        let h = b.handle(NodeId(2)).unwrap();
        for i in 0u8..40 {
            let topic = if i % 2 == 0 { Topic(1) } else { Topic(2) };
            h.publish(topic, vec![i]);
        }
        for i in 0u8..40 {
            let got = on_a.recv_timeout(RECV).unwrap();
            assert_eq!(got.payload.as_ref(), &[i]);
            assert_eq!(got.topic, if i % 2 == 0 { Topic(1) } else { Topic(2) });
        }
    }

    #[test]
    fn shutdown_is_clean() {
        let (a, b, server, client) = pair(vec![Topic(1)]);
        client.shutdown();
        server.shutdown();
        // Federations still work locally after the bridge is gone.
        let rx = a.handle(NodeId(1)).unwrap().subscribe(Topic(2));
        a.handle(NodeId(1)).unwrap().publish(Topic(2), &b"alive"[..]);
        assert!(rx.try_recv().is_ok());
        drop(b);
    }
}
