//! Zero-copy local fan-out: the shared broadcast log behind every
//! subscription.
//!
//! The pre-fast-path channel gave every subscriber its own MPMC queue, so
//! a publish with *n* subscribers paid *n* lock acquisitions, *n* condvar
//! notifies and *n* event clones. An [`EventLog`] inverts that: all
//! subscribers of one `(node, topic)` share **one** buffer holding **one**
//! [`Event`] per publish (the payload [`bytes::Bytes`] is never copied),
//! and each subscriber is a *cursor* into it. A publish is a single lock
//! acquisition, one `VecDeque` push and one conditional notify — flat in
//! everything but the cheap per-cursor lag bookkeeping — and a receive
//! clones the event out (a `Bytes` reference-count bump, not a payload
//! copy).
//!
//! **Backpressure contract.** Publishers never block and never slow down
//! for a stalled consumer. An unbounded cursor buffers arbitrarily; a
//! bounded cursor (capacity *c*) holds at most *c* pending events — when a
//! push would exceed that, the cursor's **oldest** pending event is
//! dropped (the cursor skips past it) and the drop is counted, observable
//! via [`EventReceiver::dropped`] and the federation's aggregate
//! [`FederationStats`]. Other subscribers of the same log are unaffected:
//! the log itself is garbage-collected up to the slowest *active* cursor,
//! and bounded cursors can never hold the head back by more than their
//! capacity.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::event::Event;

/// Error returned by [`EventReceiver::recv`] when the federation is gone
/// and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and closed event channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`EventReceiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No event is pending right now.
    Empty,
    /// The queue is drained and the federation has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty event channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and closed event channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`EventReceiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No event arrived within the timeout.
    Timeout,
    /// The queue is drained and the federation has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting for an event"),
            RecvTimeoutError::Disconnected => f.write_str("event channel is empty and closed"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Aggregate event-path counters of one federation, updated with relaxed
/// atomics on the publish path (no locks).
#[derive(Debug, Default)]
pub(crate) struct FanoutCounters {
    pub published: AtomicU64,
    pub delivered: AtomicU64,
    pub dropped: AtomicU64,
    pub remote_parcels: AtomicU64,
    pub bridge_rx_errors: AtomicU64,
    pub bridge_disconnects: AtomicU64,
    pub bridge_tx_dropped: AtomicU64,
}

impl FanoutCounters {
    pub(crate) fn snapshot(&self) -> FederationStats {
        FederationStats {
            events_published: self.published.load(Ordering::Relaxed),
            local_deliveries: self.delivered.load(Ordering::Relaxed),
            events_dropped: self.dropped.load(Ordering::Relaxed),
            remote_parcels: self.remote_parcels.load(Ordering::Relaxed),
            bridge_rx_errors: self.bridge_rx_errors.load(Ordering::Relaxed),
            bridge_disconnects: self.bridge_disconnects.load(Ordering::Relaxed),
            bridge_tx_dropped: self.bridge_tx_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a federation's event-path counters (see
/// [`crate::Federation::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// `publish` calls made through any handle.
    pub events_published: u64,
    /// Per-subscriber deliveries (one publish to a topic with *n* active
    /// subscribers counts *n*; remote parcels count once delivered).
    pub local_deliveries: u64,
    /// Events dropped at bounded subscribers (drop-oldest on overflow).
    pub events_dropped: u64,
    /// Parcels handed to the in-process network for cross-node delivery.
    pub remote_parcels: u64,
    /// Corrupt, oversized or otherwise undecodable frames received on TCP
    /// bridges attached to this federation (each one closes its link).
    pub bridge_rx_errors: u64,
    /// TCP bridge links that closed for any reason — peer disconnect,
    /// socket error, corrupt frame, or local shutdown.
    pub bridge_disconnects: u64,
    /// Outbound events a bridge dropped instead of sending (payload larger
    /// than the wire format's frame limit).
    pub bridge_tx_dropped: u64,
}

/// One subscriber's position in a log.
#[derive(Debug)]
struct Cursor {
    /// Sequence number of the next event this cursor will observe.
    next_seq: u64,
    /// Pending-event bound; `None` buffers without limit.
    cap: Option<usize>,
    /// Events this cursor skipped because its bound was hit.
    dropped: u64,
    active: bool,
}

#[derive(Debug)]
struct LogState {
    /// Events not yet consumed by every active cursor; `buf[0]` carries
    /// sequence number `head_seq`.
    buf: VecDeque<Event>,
    head_seq: u64,
    /// Sequence number the next push will take.
    tail_seq: u64,
    cursors: Vec<Cursor>,
    /// Active cursor count (cursors are tombstoned on receiver drop).
    active: usize,
    /// Receivers currently parked on the condvar.
    waiters: usize,
    /// Set when the owning federation is dropped.
    closed: bool,
}

/// A shared broadcast buffer: every active cursor observes every pushed
/// event, in push order.
#[derive(Debug)]
pub(crate) struct EventLog {
    state: Mutex<LogState>,
    ready: Condvar,
}

fn lock(state: &Mutex<LogState>) -> MutexGuard<'_, LogState> {
    state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Drops every entry all active cursors have passed. With no active
/// cursors the buffer empties entirely.
fn gc(s: &mut LogState) {
    let min = s.cursors.iter().filter(|c| c.active).map(|c| c.next_seq).min().unwrap_or(s.tail_seq);
    while s.head_seq < min {
        s.buf.pop_front();
        s.head_seq += 1;
    }
}

impl EventLog {
    pub(crate) fn new() -> Self {
        EventLog {
            state: Mutex::new(LogState {
                buf: VecDeque::new(),
                head_seq: 0,
                tail_seq: 0,
                cursors: Vec::new(),
                active: 0,
                waiters: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Registers a new subscriber starting at the current tail (it sees
    /// only future events). Tombstoned slots of dropped receivers are
    /// reused — safe because a tombstone's receiver is gone by definition
    /// — so subscriber churn cannot grow the cursor list without bound.
    pub(crate) fn add_cursor(self: &Arc<Self>, cap: Option<usize>) -> EventReceiver {
        let mut s = lock(&self.state);
        let next_seq = s.tail_seq;
        let fresh = Cursor { next_seq, cap: cap.map(|c| c.max(1)), dropped: 0, active: true };
        let cursor = match s.cursors.iter().position(|c| !c.active) {
            Some(slot) => {
                s.cursors[slot] = fresh;
                slot
            }
            None => {
                s.cursors.push(fresh);
                s.cursors.len() - 1
            }
        };
        s.active += 1;
        EventReceiver { log: Arc::clone(self), cursor }
    }

    /// Whether any receiver is still attached (used by the federation's
    /// registry to reclaim dead logs on subscription changes).
    pub(crate) fn has_active_cursors(&self) -> bool {
        lock(&self.state).active > 0
    }

    /// Appends one event for every active cursor. Returns
    /// `(deliveries, drops)`: the number of active cursors that will
    /// observe the event, and the number of *older* events bounded cursors
    /// skipped to stay within their capacity. One lock acquisition, one
    /// event clone (payload shared), regardless of subscriber count.
    pub(crate) fn push(&self, event: &Event) -> (usize, u64) {
        self.push_batch(std::slice::from_ref(event))
    }

    /// Appends a whole batch of events under **one** lock acquisition —
    /// the reader side of a TCP bridge drains every buffered frame per
    /// wakeup and republishes them through this single locked pass,
    /// mirroring the forwarder's write coalescing. Returns the summed
    /// `(deliveries, drops)` over the batch.
    pub(crate) fn push_batch(&self, events: &[Event]) -> (usize, u64) {
        let mut s = lock(&self.state);
        if s.closed || s.active == 0 || events.is_empty() {
            return (0, 0);
        }
        let mut dropped = 0u64;
        for event in events {
            s.buf.push_back(event.clone());
            s.tail_seq += 1;
            let tail = s.tail_seq;
            for c in &mut s.cursors {
                if !c.active {
                    continue;
                }
                if let Some(cap) = c.cap {
                    if (tail - c.next_seq) as usize > cap {
                        // Drop-oldest: the cursor skips its oldest pending
                        // event; the publisher and its co-subscribers never
                        // wait.
                        c.next_seq += 1;
                        c.dropped += 1;
                        dropped += 1;
                    }
                }
            }
        }
        gc(&mut s);
        let delivered = s.active * events.len();
        if s.waiters > 0 {
            self.ready.notify_all();
        }
        (delivered, dropped)
    }

    /// Marks the log closed (federation dropped): pending events remain
    /// receivable, then receivers observe `Disconnected`.
    pub(crate) fn close(&self) {
        let mut s = lock(&self.state);
        s.closed = true;
        if s.waiters > 0 {
            self.ready.notify_all();
        }
    }

    fn take(&self, s: &mut LogState, cursor: usize) -> Option<Event> {
        let (head, tail) = (s.head_seq, s.tail_seq);
        let next = s.cursors[cursor].next_seq;
        if next >= tail {
            return None;
        }
        let event = s.buf[(next - head) as usize].clone();
        s.cursors[cursor].next_seq = next + 1;
        if next == head {
            gc(s);
        }
        Some(event)
    }

    fn recv_deadline(
        &self,
        cursor: usize,
        deadline: Option<Instant>,
    ) -> Result<Event, RecvTimeoutError> {
        let mut s = lock(&self.state);
        loop {
            if let Some(event) = self.take(&mut s, cursor) {
                return Ok(event);
            }
            if s.closed {
                return Err(RecvTimeoutError::Disconnected);
            }
            s.waiters += 1;
            s = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    let Some(remaining) = d.checked_duration_since(now).filter(|r| !r.is_zero())
                    else {
                        s.waiters -= 1;
                        return Err(RecvTimeoutError::Timeout);
                    };
                    let (guard, _) = self
                        .ready
                        .wait_timeout(s, remaining)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard
                }
                None => self.ready.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner),
            };
            s.waiters -= 1;
        }
    }
}

/// A subscription to a federated event channel: a cursor over the shared
/// broadcast log of its `(node, topic)` registrations.
///
/// Receivers are single-owner (not `Clone`): every subscription observes
/// every event of its topics exactly once, in publish order. Dropping the
/// receiver detaches the cursor; the shared log reclaims its backlog.
pub struct EventReceiver {
    log: Arc<EventLog>,
    cursor: usize,
}

impl fmt::Debug for EventReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventReceiver")
            .field("pending", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventReceiver {
    /// Receives the next event without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is pending;
    /// [`TryRecvError::Disconnected`] once the federation is dropped and
    /// the backlog is drained.
    pub fn try_recv(&self) -> Result<Event, TryRecvError> {
        let mut s = lock(&self.log.state);
        match self.log.take(&mut s, self.cursor) {
            Some(event) => Ok(event),
            None if s.closed => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until an event arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the federation is dropped and the backlog is
    /// drained.
    pub fn recv(&self) -> Result<Event, RecvError> {
        self.log.recv_deadline(self.cursor, None).map_err(|_| RecvError)
    }

    /// Blocks up to `timeout` for an event.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time;
    /// [`RecvTimeoutError::Disconnected`] once the federation is dropped
    /// and the backlog is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Event, RecvTimeoutError> {
        self.log.recv_deadline(self.cursor, Some(Instant::now() + timeout))
    }

    /// Events currently pending for this subscriber.
    #[must_use]
    pub fn len(&self) -> usize {
        let s = lock(&self.log.state);
        (s.tail_seq - s.cursors[self.cursor].next_seq) as usize
    }

    /// Whether nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events this (bounded) subscriber lost to its backpressure bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        lock(&self.log.state).cursors[self.cursor].dropped
    }
}

impl Drop for EventReceiver {
    fn drop(&mut self) {
        let mut s = lock(&self.log.state);
        if s.cursors[self.cursor].active {
            s.cursors[self.cursor].active = false;
            s.active -= 1;
            gc(&mut s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NodeId, Topic};

    fn ev(tag: u8) -> Event {
        Event::new(Topic(1), NodeId(0), vec![tag])
    }

    #[test]
    fn every_cursor_sees_every_event_in_order() {
        let log = Arc::new(EventLog::new());
        let a = log.add_cursor(None);
        let b = log.add_cursor(None);
        for i in 0..5u8 {
            assert_eq!(log.push(&ev(i)), (2, 0));
        }
        for i in 0..5u8 {
            assert_eq!(a.try_recv().unwrap().payload.as_ref(), &[i]);
        }
        assert_eq!(a.try_recv(), Err(TryRecvError::Empty));
        for i in 0..5u8 {
            assert_eq!(b.try_recv().unwrap().payload.as_ref(), &[i]);
        }
    }

    #[test]
    fn late_cursor_sees_only_future_events() {
        let log = Arc::new(EventLog::new());
        let _early = log.add_cursor(None);
        log.push(&ev(0));
        let late = log.add_cursor(None);
        log.push(&ev(1));
        assert_eq!(late.try_recv().unwrap().payload.as_ref(), &[1]);
        assert!(late.try_recv().is_err());
    }

    #[test]
    fn bounded_cursor_drops_oldest_and_counts() {
        let log = Arc::new(EventLog::new());
        let bounded = log.add_cursor(Some(2));
        let unbounded = log.add_cursor(None);
        let mut dropped = 0;
        for i in 0..5u8 {
            dropped += log.push(&ev(i)).1;
        }
        assert_eq!(dropped, 3, "3 oldest events dropped at the bounded cursor");
        assert_eq!(bounded.dropped(), 3);
        // Bounded keeps the newest `cap` events.
        assert_eq!(bounded.try_recv().unwrap().payload.as_ref(), &[3]);
        assert_eq!(bounded.try_recv().unwrap().payload.as_ref(), &[4]);
        assert!(bounded.try_recv().is_err());
        // The unbounded co-subscriber is unaffected.
        for i in 0..5u8 {
            assert_eq!(unbounded.try_recv().unwrap().payload.as_ref(), &[i]);
        }
        assert_eq!(unbounded.dropped(), 0);
    }

    #[test]
    fn push_batch_delivers_in_order_and_respects_bounds() {
        let log = Arc::new(EventLog::new());
        let bounded = log.add_cursor(Some(2));
        let unbounded = log.add_cursor(None);
        let events: Vec<Event> = (0..5u8).map(ev).collect();
        let (delivered, dropped) = log.push_batch(&events);
        assert_eq!(delivered, 10, "2 cursors x 5 events");
        assert_eq!(dropped, 3, "bounded cursor kept only the newest 2");
        for i in 0..5u8 {
            assert_eq!(unbounded.try_recv().unwrap().payload.as_ref(), &[i]);
        }
        assert_eq!(bounded.try_recv().unwrap().payload.as_ref(), &[3]);
        assert_eq!(bounded.try_recv().unwrap().payload.as_ref(), &[4]);
        assert_eq!(bounded.dropped(), 3);
        assert_eq!(log.push_batch(&[]), (0, 0), "empty batch is free");
    }

    #[test]
    fn gc_reclaims_consumed_prefix() {
        let log = Arc::new(EventLog::new());
        let a = log.add_cursor(None);
        for i in 0..10u8 {
            log.push(&ev(i));
        }
        for _ in 0..10 {
            a.recv().unwrap();
        }
        assert_eq!(lock(&log.state).buf.len(), 0, "fully consumed log holds nothing");
    }

    #[test]
    fn dropping_a_stalled_receiver_releases_its_backlog() {
        let log = Arc::new(EventLog::new());
        let stalled = log.add_cursor(None);
        let live = log.add_cursor(None);
        for i in 0..8u8 {
            log.push(&ev(i));
        }
        while live.try_recv().is_ok() {}
        assert_eq!(lock(&log.state).buf.len(), 8, "held by the stalled cursor");
        drop(stalled);
        assert_eq!(lock(&log.state).buf.len(), 0, "backlog reclaimed");
        assert_eq!(log.push(&ev(9)), (1, 0), "only the live cursor counts");
    }

    #[test]
    fn push_without_active_cursors_delivers_nothing() {
        let log = Arc::new(EventLog::new());
        assert_eq!(log.push(&ev(0)), (0, 0));
        let rx = log.add_cursor(None);
        drop(rx);
        assert_eq!(log.push(&ev(1)), (0, 0));
        assert_eq!(lock(&log.state).buf.len(), 0);
    }

    #[test]
    fn close_drains_then_disconnects() {
        let log = Arc::new(EventLog::new());
        let rx = log.add_cursor(None);
        log.push(&ev(0));
        log.close();
        assert!(rx.try_recv().is_ok(), "pending events survive the close");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_waits_and_wakes() {
        let log = Arc::new(EventLog::new());
        let rx = log.add_cursor(None);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        let pusher = Arc::clone(&log);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            pusher.push(&ev(7));
        });
        let got = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload.as_ref(), &[7]);
        t.join().unwrap();
    }

    #[test]
    fn payload_is_shared_not_copied() {
        let log = Arc::new(EventLog::new());
        let a = log.add_cursor(None);
        let b = log.add_cursor(None);
        let event = Event::new(Topic(1), NodeId(0), vec![1, 2, 3]);
        log.push(&event);
        let ea = a.recv().unwrap();
        let eb = b.recv().unwrap();
        // Same allocation: the Bytes payload is reference-counted, so both
        // receivers observe the same backing slice address.
        assert_eq!(ea.payload.as_ref().as_ptr(), eb.payload.as_ref().as_ptr());
        assert_eq!(ea.payload.as_ref().as_ptr(), event.payload.as_ref().as_ptr());
    }
}
