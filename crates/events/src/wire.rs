//! Versioned binary wire codec for TCP bridges.
//!
//! # Frame layout
//!
//! Every frame is a 4-byte big-endian body length followed by the body:
//!
//! ```text
//! [u32 BE body_len] [u8 version = 0x01] [u32 BE topic] [payload bytes]
//!                   `-------------------- body --------------------'
//! ```
//!
//! so `body_len = 5 + payload_len`. Version `0x01` is the first binary
//! format; the version byte leaves room to evolve the body without
//! breaking framing.
//!
//! # Legacy compatibility
//!
//! The previous wire format was the same 4-byte length prefix around a
//! JSON object `{"topic":…,"payload":[…]}`. A JSON body's first byte is
//! always `{` (0x7B) and can never be 0x01, so the decoder dispatches on
//! the first body byte: peers speaking either format interoperate through
//! one codec, and golden frames of both kinds are pinned in the tests.
//!
//! # Batched, zero-copy decode
//!
//! [`FrameDecoder`] accumulates raw socket reads and [`FrameDecoder::drain`]s
//! every complete frame at once: the complete-frame prefix of the buffer is
//! moved (not copied) into one shared [`Bytes`] allocation and each binary
//! frame's payload is handed out as a [`Bytes::slice`] view into it — a
//! burst of *n* frames costs zero payload copies on the binary path.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::event::Topic;

/// Current binary wire format version (first body byte of a binary frame).
pub const WIRE_VERSION: u8 = 0x01;

/// Upper bound on one frame's body; larger length prefixes are treated as
/// corrupt (or hostile) and terminate the link.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Fixed per-frame overhead of the binary format beyond the payload:
/// 4-byte length prefix + version byte + 4-byte topic.
pub const FRAME_OVERHEAD: usize = 4 + 1 + 4;

/// The legacy JSON body (kept for golden-frame tests, the wire bench's
/// baseline arm, and decoding frames from old peers).
#[derive(Debug, Serialize, Deserialize)]
struct JsonWireEvent {
    topic: u32,
    payload: Vec<u8>,
}

/// One decoded frame: the topic plus a payload that (on the binary path)
/// is a zero-copy view into the drained batch buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// The event type tag carried by the frame.
    pub topic: Topic,
    /// The frame payload.
    pub payload: Bytes,
}

/// Why a frame (and therefore the stream — framing is lost) is unusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The advertised body length.
        len: usize,
    },
    /// The body is neither a valid binary frame nor legacy JSON.
    Corrupt,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame body of {len} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Corrupt => write!(f, "frame body is not a recognized wire format"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one binary frame to `buf` without copying through any
/// intermediate encoding.
///
/// # Errors
///
/// Returns [`FrameError::Oversized`] (appending nothing) if the payload
/// would exceed [`MAX_FRAME`]; the caller drops the event and counts it
/// instead of panicking.
pub fn append_frame(buf: &mut Vec<u8>, topic: Topic, payload: &[u8]) -> Result<(), FrameError> {
    let body_len = 5 + payload.len();
    if body_len > MAX_FRAME {
        return Err(FrameError::Oversized { len: body_len });
    }
    buf.reserve(4 + body_len);
    #[allow(clippy::cast_possible_truncation)] // MAX_FRAME < u32::MAX
    buf.extend_from_slice(&(body_len as u32).to_be_bytes());
    buf.push(WIRE_VERSION);
    buf.extend_from_slice(&topic.0.to_be_bytes());
    buf.extend_from_slice(payload);
    Ok(())
}

/// Appends one legacy JSON frame to `buf` (the pre-binary wire format).
/// Kept for compatibility tests and as the bench baseline.
///
/// # Errors
///
/// Returns [`FrameError::Oversized`] (appending nothing) if the encoded
/// body would exceed [`MAX_FRAME`].
pub fn append_frame_json(
    buf: &mut Vec<u8>,
    topic: Topic,
    payload: &[u8],
) -> Result<(), FrameError> {
    let wire = JsonWireEvent { topic: topic.0, payload: payload.to_vec() };
    let body = serde_json::to_vec(&wire).expect("plain data");
    if body.len() > MAX_FRAME {
        return Err(FrameError::Oversized { len: body.len() });
    }
    buf.reserve(4 + body.len());
    #[allow(clippy::cast_possible_truncation)] // MAX_FRAME < u32::MAX
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&body);
    Ok(())
}

/// Frames produced by one [`FrameDecoder::drain`] pass, plus the terminal
/// error (if any) hit after them. Once `fatal` is set the stream's framing
/// is unrecoverable and the link must close — but every frame decoded
/// before the error is still delivered.
#[derive(Debug)]
pub struct Drained {
    /// Complete frames decoded this pass, in wire order.
    pub frames: Vec<WireFrame>,
    /// Terminal decode error, if the batch ended in one.
    pub fatal: Option<FrameError>,
}

/// Incremental frame decoder: feed it raw socket bytes, drain complete
/// frames in batches. See the module docs for the zero-copy contract.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet drained (complete or partial).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decodes every complete frame currently buffered, in one pass. The
    /// complete-frame prefix is moved into a single shared allocation and
    /// binary payloads are returned as zero-copy slices of it; any partial
    /// trailing frame stays buffered for the next read.
    pub fn drain(&mut self) -> Drained {
        // First pass: find the complete-frame prefix (and the first fatal
        // length error, which truncates the stream there).
        let mut spans: Vec<(usize, usize)> = Vec::new(); // (body_start, body_len)
        let mut pos = 0usize;
        let mut fatal = None;
        while self.buf.len() - pos >= 4 {
            let len = u32::from_be_bytes(
                self.buf[pos..pos + 4].try_into().expect("4-byte length prefix"),
            ) as usize;
            if len > MAX_FRAME {
                fatal = Some(FrameError::Oversized { len });
                break;
            }
            if self.buf.len() - pos - 4 < len {
                break; // partial frame: wait for more bytes
            }
            spans.push((pos + 4, len));
            pos += 4 + len;
        }
        if spans.is_empty() {
            return Drained { frames: Vec::new(), fatal };
        }

        // Move (don't copy) the complete prefix into one shared buffer.
        let batch: Bytes = if pos == self.buf.len() {
            std::mem::take(&mut self.buf).into()
        } else {
            let rest = self.buf.split_off(pos);
            std::mem::replace(&mut self.buf, rest).into()
        };

        // Second pass: decode each body as a view of the batch.
        let mut frames = Vec::with_capacity(spans.len());
        for (start, len) in spans {
            match decode_body(&batch, start, len) {
                Ok(frame) => frames.push(frame),
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }
        Drained { frames, fatal }
    }
}

/// Decodes one frame body at `batch[start..start + len]`.
fn decode_body(batch: &Bytes, start: usize, len: usize) -> Result<WireFrame, FrameError> {
    let body = &batch.as_slice()[start..start + len];
    match body.first() {
        Some(&WIRE_VERSION) => {
            if len < 5 {
                return Err(FrameError::Corrupt);
            }
            let topic = u32::from_be_bytes(body[1..5].try_into().expect("4-byte topic"));
            // The zero-copy hand-off: a view of the batch, not a copy.
            let payload = batch.slice(start + 5..start + len);
            Ok(WireFrame { topic: Topic(topic), payload })
        }
        Some(&b'{') => {
            let wire: JsonWireEvent =
                serde_json::from_slice(body).map_err(|_| FrameError::Corrupt)?;
            Ok(WireFrame { topic: Topic(wire.topic), payload: wire.payload.into() })
        }
        _ => Err(FrameError::Corrupt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(bytes: &[u8]) -> Drained {
        let mut dec = FrameDecoder::new();
        dec.extend(bytes);
        dec.drain()
    }

    #[test]
    fn binary_round_trip() {
        let mut buf = Vec::new();
        append_frame(&mut buf, Topic(7), b"hello").unwrap();
        append_frame(&mut buf, Topic(0x4000_0001), &[]).unwrap();
        let out = drain_all(&buf);
        assert!(out.fatal.is_none());
        assert_eq!(out.frames.len(), 2);
        assert_eq!(out.frames[0].topic, Topic(7));
        assert_eq!(out.frames[0].payload.as_ref(), b"hello");
        assert_eq!(out.frames[1].topic, Topic(0x4000_0001));
        assert!(out.frames[1].payload.is_empty());
    }

    #[test]
    fn golden_binary_frame() {
        // 9-byte body: version 0x01, topic 7 BE, payload [0xAA, 0xBB].
        let mut buf = Vec::new();
        append_frame(&mut buf, Topic(7), &[0xAA, 0xBB]).unwrap();
        assert_eq!(buf, vec![0, 0, 0, 7, 0x01, 0, 0, 0, 7, 0xAA, 0xBB]);
    }

    #[test]
    fn golden_json_frame_still_decodes() {
        // A frame exactly as PR 5's JSON codec would have written it.
        let body = br#"{"topic":42,"payload":[1,2,3]}"#;
        let mut buf = Vec::new();
        #[allow(clippy::cast_possible_truncation)]
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        let out = drain_all(&buf);
        assert!(out.fatal.is_none());
        assert_eq!(out.frames.len(), 1);
        assert_eq!(out.frames[0].topic, Topic(42));
        assert_eq!(out.frames[0].payload.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn json_and_binary_frames_interleave() {
        let mut buf = Vec::new();
        append_frame_json(&mut buf, Topic(1), b"old").unwrap();
        append_frame(&mut buf, Topic(2), b"new").unwrap();
        append_frame_json(&mut buf, Topic(3), b"old2").unwrap();
        let out = drain_all(&buf);
        assert!(out.fatal.is_none());
        let got: Vec<(u32, &[u8])> =
            out.frames.iter().map(|f| (f.topic.0, f.payload.as_ref())).collect();
        assert_eq!(got, vec![(1, &b"old"[..]), (2, &b"new"[..]), (3, &b"old2"[..])]);
    }

    #[test]
    fn binary_payloads_are_views_of_one_batch_allocation() {
        let mut buf = Vec::new();
        append_frame(&mut buf, Topic(1), b"aaaa").unwrap();
        append_frame(&mut buf, Topic(2), b"bbbb").unwrap();
        let out = drain_all(&buf);
        let p0 = out.frames[0].payload.as_slice().as_ptr() as usize;
        let p1 = out.frames[1].payload.as_slice().as_ptr() as usize;
        // Second payload sits exactly one frame after the first inside the
        // same backing allocation: offset = rest of frame 0 (4 for "aaaa")
        // + frame 1's prefix and header (4 + 5).
        assert_eq!(p1 - p0, 4 + FRAME_OVERHEAD);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = Vec::new();
        append_frame(&mut full, Topic(9), b"split me").unwrap();
        let mut dec = FrameDecoder::new();
        for chunk in full.chunks(3) {
            let before = dec.drain();
            assert!(before.fatal.is_none());
            assert!(before.frames.is_empty() || chunk.is_empty());
            dec.extend(chunk);
        }
        let out = dec.drain();
        assert!(out.fatal.is_none());
        assert_eq!(out.frames.len(), 1);
        assert_eq!(out.frames[0].payload.as_ref(), b"split me");
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn trailing_partial_survives_a_drain() {
        let mut buf = Vec::new();
        append_frame(&mut buf, Topic(1), b"whole").unwrap();
        let mut second = Vec::new();
        append_frame(&mut second, Topic(2), b"later").unwrap();
        buf.extend_from_slice(&second[..4]); // only the next length prefix
        let mut dec = FrameDecoder::new();
        dec.extend(&buf);
        let first = dec.drain();
        assert_eq!(first.frames.len(), 1);
        assert_eq!(dec.pending(), 4);
        dec.extend(&second[4..]);
        let rest = dec.drain();
        assert_eq!(rest.frames.len(), 1);
        assert_eq!(rest.frames[0].payload.as_ref(), b"later");
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut buf = Vec::new();
        append_frame(&mut buf, Topic(1), b"ok").unwrap();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let out = drain_all(&buf);
        assert_eq!(out.frames.len(), 1, "frames before the bad prefix still decode");
        assert!(matches!(out.fatal, Some(FrameError::Oversized { .. })));
    }

    #[test]
    fn unknown_version_byte_is_fatal() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&6u32.to_be_bytes());
        buf.extend_from_slice(&[0x02, 0, 0, 0, 7, 0xFF]); // future version
        let out = drain_all(&buf);
        assert!(out.frames.is_empty());
        assert_eq!(out.fatal, Some(FrameError::Corrupt));
    }

    #[test]
    fn corrupt_json_body_is_fatal() {
        let body = b"{not json";
        let mut buf = Vec::new();
        #[allow(clippy::cast_possible_truncation)]
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        let out = drain_all(&buf);
        assert!(out.frames.is_empty());
        assert_eq!(out.fatal, Some(FrameError::Corrupt));
    }

    #[test]
    fn oversized_payload_is_refused_at_encode_time() {
        let huge = vec![0u8; MAX_FRAME - 4]; // body would be MAX_FRAME + 1
        let mut buf = Vec::new();
        let err = append_frame(&mut buf, Topic(1), &huge).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }));
        assert!(buf.is_empty(), "nothing appended on refusal");
    }

    #[test]
    fn binary_frames_are_smaller_than_json() {
        let payload = vec![0xABu8; 256];
        let mut bin = Vec::new();
        append_frame(&mut bin, Topic(6), &payload).unwrap();
        let mut json = Vec::new();
        append_frame_json(&mut json, Topic(6), &payload).unwrap();
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} bytes vs JSON {} bytes",
            bin.len(),
            json.len()
        );
    }
}
