//! Cross-crate integration: workload generation → configuration engine →
//! simulator / runtime, exercising the full reproduction pipeline.

use rtcm::config::{configure, configure_with, CpsCharacteristics, WorkloadSpec};
use rtcm::core::strategy::ServiceConfig;
use rtcm::core::task::TaskId;
use rtcm::core::time::Duration;
use rtcm::sim::{simulate, OverheadModel, SimConfig};
use rtcm::workload::{ArrivalConfig, ArrivalTrace, ImbalancedWorkload, RandomWorkload};

fn arrival_config(secs: u64) -> ArrivalConfig {
    ArrivalConfig { horizon: Duration::from_secs(secs), ..ArrivalConfig::default() }
}

#[test]
fn all_fifteen_combos_simulate_cleanly() {
    let tasks = RandomWorkload::default().generate(11).unwrap();
    let trace = ArrivalTrace::generate(&tasks, &arrival_config(60), 11);
    for services in ServiceConfig::all_valid() {
        let report = simulate(&tasks, &trace, &SimConfig::new(services)).unwrap();
        let ratio = report.ratio.ratio();
        assert!((0.0..=1.0 + 1e-9).contains(&ratio), "{}: ratio {ratio}", services.label());
        assert_eq!(
            report.ratio.arrived_jobs() as usize,
            trace.len(),
            "every trace arrival is observed"
        );
    }
}

#[test]
fn invalid_combos_fail_everywhere() {
    let tasks = RandomWorkload::default().generate(3).unwrap();
    let trace = ArrivalTrace::generate(&tasks, &arrival_config(5), 3);
    let spec = WorkloadSpec::from_task_set("w", 5, &tasks);
    for services in ServiceConfig::all().into_iter().filter(|c| !c.is_valid()) {
        assert!(simulate(&tasks, &trace, &SimConfig::new(services)).is_err());
        assert!(configure_with(&spec, services).is_err());
    }
}

/// AUB soundness, end to end: with zero middleware overheads, no admitted
/// job may ever miss its end-to-end deadline — across seeds and strategy
/// combinations.
#[test]
fn admitted_jobs_never_miss_deadlines_without_overheads() {
    for seed in 0..5 {
        let tasks = RandomWorkload::default().generate(seed).unwrap();
        let trace = ArrivalTrace::generate(&tasks, &arrival_config(120), seed);
        for services in ["T_N_N", "J_N_N", "J_J_N", "J_J_J", "T_T_T"] {
            let report =
                simulate(&tasks, &trace, &SimConfig::ideal(services.parse().unwrap())).unwrap();
            assert_eq!(
                report.deadline_misses, 0,
                "seed {seed} combo {services}: AUB admitted a job that missed"
            );
        }
    }
}

/// The headline Figure-5 ordering on a reduced run: IR per job clearly
/// beats no IR, and J_J_J beats the no-service baseline.
#[test]
fn figure5_ordering_holds_on_average() {
    let mut base = 0.0;
    let mut ir_job = 0.0;
    let mut full = 0.0;
    const SEEDS: u64 = 4;
    for seed in 0..SEEDS {
        let tasks = RandomWorkload::default().generate(seed).unwrap();
        let trace = ArrivalTrace::generate(&tasks, &arrival_config(120), seed);
        let run = |label: &str| {
            simulate(&tasks, &trace, &SimConfig::new(label.parse().unwrap())).unwrap().ratio.ratio()
        };
        base += run("T_N_N");
        ir_job += run("J_J_N");
        full += run("J_J_J");
    }
    assert!(
        ir_job > base + 0.05 * SEEDS as f64,
        "IR per job must significantly beat the baseline: {ir_job} vs {base}"
    );
    assert!(full >= ir_job - 0.02 * SEEDS as f64, "J_J_J at least comparable to J_J_N");
}

/// The Figure-6 claim: on imbalanced workloads LB per task is a large win,
/// and per-job LB is not much better than per-task.
#[test]
fn figure6_lb_gain_holds_on_average() {
    let mut no_lb = 0.0;
    let mut lb_task = 0.0;
    let mut lb_job = 0.0;
    // Figure 6 is a claim about averages; individual seeds can disagree
    // sharply (one generated workload has per-job LB far below per-task),
    // so average over enough seeds for the aggregate shape to dominate.
    const SEEDS: u64 = 8;
    for seed in 0..SEEDS {
        let tasks = ImbalancedWorkload::default().generate(seed).unwrap();
        let trace = ArrivalTrace::generate(&tasks, &arrival_config(120), seed);
        let run = |label: &str| {
            simulate(&tasks, &trace, &SimConfig::new(label.parse().unwrap())).unwrap().ratio.ratio()
        };
        no_lb += run("J_T_N");
        lb_task += run("J_T_T");
        lb_job += run("J_T_J");
    }
    assert!(
        lb_task > no_lb + 0.1 * SEEDS as f64,
        "LB per task must be a significant improvement: {lb_task} vs {no_lb}"
    );
    let per_seed_gap = (lb_job - lb_task).abs() / SEEDS as f64;
    assert!(per_seed_gap < 0.15, "per-task vs per-job LB differ little: gap {per_seed_gap}");
}

/// Regression pin for the per-job LB collapse (ROADMAP: "Investigate the
/// per-job LB collapse"): on imbalanced workloads one generated seed
/// (seed 2) drives `J_T_J` to an accepted ratio of ~0.17 while `J_T_T`
/// reaches ~0.90 — per-job re-proposal keeps thrashing the placement of
/// heavy tasks, where a pinned per-task plan stays put. This test pins
/// both the collapsing seed and the seed-averaged `J_T_T` − `J_T_J` gap
/// (~0.09 over 8 seeds) so a future load-balancer change that fixes —
/// or worsens — the effect surfaces here instead of silently shifting
/// the Figure-6 averages. Everything is deterministic (vendored seeded
/// RNG), so the bands are tight by design.
#[test]
fn per_job_lb_collapse_stays_pinned() {
    let mut task_sum = 0.0;
    let mut job_sum = 0.0;
    let mut collapse_gap = None;
    const SEEDS: u64 = 8;
    for seed in 0..SEEDS {
        let tasks = ImbalancedWorkload::default().generate(seed).unwrap();
        let trace = ArrivalTrace::generate(&tasks, &arrival_config(120), seed);
        let run = |label: &str| {
            simulate(&tasks, &trace, &SimConfig::new(label.parse().unwrap())).unwrap().ratio.ratio()
        };
        let (lb_task, lb_job) = (run("J_T_T"), run("J_T_J"));
        task_sum += lb_task;
        job_sum += lb_job;
        if seed == 2 {
            collapse_gap = Some(lb_task - lb_job);
        }
    }
    let collapse_gap = collapse_gap.expect("seed 2 runs");
    assert!(
        collapse_gap > 0.5,
        "seed 2's per-job LB collapse (gap {collapse_gap:.3}) disappeared — if this is a \
         deliberate LB improvement, re-pin this test and close the ROADMAP item"
    );
    let mean_gap = (task_sum - job_sum) / SEEDS as f64;
    assert!(
        (0.03..0.15).contains(&mean_gap),
        "seed-averaged J_T_T vs J_T_J gap moved out of its pinned band: {mean_gap:.3}"
    );
}

/// Simulation determinism across the full pipeline: same seeds, same
/// everything.
#[test]
fn end_to_end_determinism() {
    let tasks = RandomWorkload::default().generate(9).unwrap();
    let trace = ArrivalTrace::generate(&tasks, &arrival_config(60), 9);
    let cfg = SimConfig {
        services: "J_J_T".parse().unwrap(),
        overheads: OverheadModel::paper_calibrated(),
        seed: 9,
    };
    let a = simulate(&tasks, &trace, &cfg).unwrap();
    let b = simulate(&tasks, &trace, &cfg).unwrap();
    assert_eq!(a, b);
}

/// Workload → spec → engine → simulator: generated workloads survive the
/// developer-facing path.
#[test]
fn generated_workload_flows_through_the_engine() {
    let tasks = RandomWorkload::default().generate(2).unwrap();
    let spec = WorkloadSpec::from_task_set("generated", 5, &tasks);
    let text = spec.to_text();
    let reparsed = WorkloadSpec::parse(&text).unwrap();
    let deployment = configure(&reparsed, &CpsCharacteristics::default()).unwrap();
    assert_eq!(deployment.tasks.len(), tasks.len());

    // Ids are re-assigned in declaration order; the sets must agree on
    // structure.
    for (a, b) in deployment.tasks.iter().zip(tasks.iter()) {
        assert_eq!(a.subtasks().len(), b.subtasks().len());
        assert_eq!(a.deadline(), b.deadline());
    }

    let trace = ArrivalTrace::generate(&deployment.tasks, &arrival_config(30), 2);
    let report = simulate(&deployment.tasks, &trace, &SimConfig::new(deployment.services)).unwrap();
    assert!(report.ratio.arrived_jobs() > 0);
}

/// The per-task/per-job boundary: under AC per task, a periodic task
/// rejected at first arrival stays rejected; under AC per job the same
/// workload recovers capacity.
#[test]
fn ac_strategy_semantics_visible_in_ratio() {
    let tasks = RandomWorkload { target_utilization: 0.8, ..RandomWorkload::default() }
        .generate(4)
        .unwrap();
    let trace = ArrivalTrace::generate(&tasks, &arrival_config(120), 4);
    let per_task = simulate(&tasks, &trace, &SimConfig::ideal("T_N_N".parse().unwrap())).unwrap();
    let per_job = simulate(&tasks, &trace, &SimConfig::ideal("J_N_N".parse().unwrap())).unwrap();
    assert!(
        per_job.ratio.ratio() >= per_task.ratio.ratio() - 1e-9,
        "job skipping cannot do worse than whole-task rejection: {} vs {}",
        per_job.ratio.ratio(),
        per_task.ratio.ratio()
    );
}

#[test]
fn trace_identity_across_combos_is_what_makes_comparison_fair() {
    // The same (task set, seed) always produces the identical trace object,
    // so per-combo differences can only come from the middleware.
    let tasks = RandomWorkload::default().generate(5).unwrap();
    let t1 = ArrivalTrace::generate(&tasks, &arrival_config(60), 5);
    let t2 = ArrivalTrace::generate(&tasks, &arrival_config(60), 5);
    assert_eq!(t1, t2);
    assert!(t1.offered_utilization(&tasks) > 0.0);
}

/// Cross-validation of the simulator against holistic response-time
/// analysis: for periodic-only workloads with zero overheads, every
/// simulated end-to-end response must stay at or below the analytical
/// bound of its task.
#[test]
fn simulated_responses_within_holistic_bounds() {
    use rtcm::core::response::analyze_response_times;
    use rtcm::core::time::Duration;
    use rtcm::sim::simulate_recorded;

    for seed in 0..5u64 {
        let workload = RandomWorkload {
            aperiodic_tasks: 0,
            periodic_tasks: 6,
            target_utilization: 0.4,
            ..RandomWorkload::default()
        };
        let tasks = workload.generate(seed).unwrap();
        let analysis = analyze_response_times(&tasks, Duration::ZERO).unwrap();
        let trace = ArrivalTrace::generate(&tasks, &arrival_config(60), seed);
        let (_, records) =
            simulate_recorded(&tasks, &trace, &SimConfig::ideal("J_N_N".parse().unwrap())).unwrap();
        for record in records.iter().filter(|r| r.completed.is_some()) {
            let Some(bound) = analysis.end_to_end(record.job.task) else {
                continue; // analysis could not bound this task
            };
            let response = record.completed.expect("filtered").elapsed_since(record.arrival);
            assert!(
                response <= bound,
                "seed {seed} job {}: simulated {response} exceeds analytical bound {bound}",
                record.job
            );
        }
    }
}

#[test]
fn task_ids_survive_reindex_after_serde() {
    let tasks = RandomWorkload::default().generate(6).unwrap();
    let json = serde_json::to_string(&tasks).unwrap();
    let mut back: rtcm::core::task::TaskSet = serde_json::from_str(&json).unwrap();
    back.reindex();
    assert!(back.get(TaskId(0)).is_some());
    assert_eq!(back.len(), tasks.len());
}
