//! Integration tests of the configuration-engine → threaded-runtime path:
//! the Figure 4 pipeline under test, including strategy semantics observed
//! through the runtime's reports.

use std::time::Duration as StdDuration;

use rtcm::config::{
    configure, configure_with, CpsCharacteristics, OverheadTolerance, WorkloadSpec,
};
use rtcm::core::task::TaskId;
use rtcm::rt::{RtOptions, System};

const QUIESCE: StdDuration = StdDuration::from_secs(20);

fn plant_spec() -> WorkloadSpec {
    WorkloadSpec::parse(
        "\
workload plant
processors 3
task scan periodic period=100ms
  subtask exec=2ms proc=0 replicas=1
  subtask exec=2ms proc=1
task alert aperiodic deadline=150ms
  subtask exec=1ms proc=0
  subtask exec=1ms proc=2
",
    )
    .unwrap()
}

#[test]
fn questionnaire_to_running_system() {
    let answers = CpsCharacteristics {
        job_skipping: true,
        component_replication: true,
        state_persistency: false,
        overhead_tolerance: OverheadTolerance::PerJob,
    };
    let deployment = configure(&plant_spec(), &answers).unwrap();
    assert_eq!(deployment.services.label(), "J_J_J");

    let system = System::launch(&deployment, RtOptions::fast()).unwrap();
    for seq in 0..5 {
        system.submit(TaskId(0), seq).unwrap();
        system.submit(TaskId(1), seq).unwrap();
    }
    assert!(system.quiesce(QUIESCE));
    let report = system.shutdown();
    assert_eq!(report.jobs_completed, 10);
    assert_eq!(report.deadline_misses, 0);
    assert_eq!(report.ac_test.count(), 10, "per-job AC tests each of the 10 jobs");
}

#[test]
fn every_valid_combo_launches_and_completes_work() {
    for services in rtcm::core::strategy::ServiceConfig::all_valid() {
        let deployment = configure_with(&plant_spec(), services).unwrap();
        let system = System::launch(&deployment, RtOptions::fast()).unwrap();
        system.submit(TaskId(0), 0).unwrap();
        system.submit(TaskId(1), 0).unwrap();
        assert!(system.quiesce(QUIESCE), "{services} drains");
        let report = system.shutdown();
        assert_eq!(report.jobs_completed, 2, "{services} completes both jobs");
    }
}

#[test]
fn xml_plan_matches_launched_topology() {
    let deployment = configure(&plant_spec(), &CpsCharacteristics::default()).unwrap();
    let xml = deployment.plan.to_xml();
    // Central services plus per-processor TE/IR for 3 processors.
    assert!(xml.contains("Central-AC"));
    assert!(xml.contains("Central-LB"));
    for p in 0..3 {
        assert!(xml.contains(&format!("TE-{p}")));
        assert!(xml.contains(&format!("IR-{p}")));
    }
    // The replica duplicate of scan's first subtask exists on app-1.
    assert!(xml.contains("task0-sub0@app1"));

    // And the plan actually launches.
    let system = System::launch(&deployment, RtOptions::fast()).unwrap();
    let _ = system.shutdown();
}

#[test]
fn per_task_reports_match_sim_semantics() {
    // Per-task AC: one admission test, then local fast-path releases.
    let deployment = configure_with(&plant_spec(), "T_T_T".parse().unwrap()).unwrap();
    let system = System::launch(&deployment, RtOptions::fast()).unwrap();
    for seq in 0..4 {
        system.submit(TaskId(0), seq).unwrap();
        assert!(system.quiesce(QUIESCE));
    }
    let report = system.shutdown();
    assert_eq!(report.ac_test.count(), 1);
    assert_eq!(report.jobs_completed, 4);
}

#[test]
fn engine_adjustment_surfaces_in_deployment_and_still_runs() {
    // Contradictory answers: no job skipping + per-job overhead tolerance.
    let answers = CpsCharacteristics {
        job_skipping: false,
        component_replication: false,
        state_persistency: true,
        overhead_tolerance: OverheadTolerance::PerJob,
    };
    let deployment = configure(&plant_spec(), &answers).unwrap();
    assert_eq!(deployment.services.label(), "T_T_N");
    assert!(!deployment.adjustments.is_empty());
    let system = System::launch(&deployment, RtOptions::fast()).unwrap();
    system.submit(TaskId(1), 0).unwrap();
    assert!(system.quiesce(QUIESCE));
    assert_eq!(system.shutdown().jobs_completed, 1);
}
