//! Two event-channel federations — think two hosts — bridged over real
//! TCP through dedicated gateway nodes, the way TAO federates event
//! channels across machines. An alert raised on "host B" reaches a
//! consumer on "host A" through the wire.
//!
//! ```sh
//! cargo run --example bridged_hosts
//! ```

use std::time::Duration as StdDuration;

use rtcm::events::{remote, Federation, Latency, NodeId, Topic};

const ALERTS: Topic = Topic(42);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Host A: a monitoring station. Node 0 is its gateway.
    let host_a = Federation::new(2, Latency::None, 0);
    // Host B: the plant floor, with emulated 300 µs internal latency.
    let host_b = Federation::new(3, Latency::Constant(StdDuration::from_micros(300)), 0);

    let (addr, _server) = remote::listen(&host_a, NodeId(0), "127.0.0.1:0", vec![ALERTS])?;
    let _client = remote::connect(&host_b, NodeId(0), addr, vec![ALERTS])?;
    println!("gateway listening on {addr}; plant floor connected\n");

    let console = host_a.handle(NodeId(1))?.subscribe(ALERTS);

    // Sensors on host B raise alerts.
    for (i, text) in
        ["pressure spike on line 2", "valve 7 blocked", "line 2 recovered"].iter().enumerate()
    {
        host_b.handle(NodeId(1 + (i as u16 % 2)))?.publish(ALERTS, text.as_bytes().to_vec());
    }

    for _ in 0..3 {
        let event = console.recv_timeout(StdDuration::from_secs(5))?;
        println!(
            "monitoring console received: {:?} (via gateway {})",
            String::from_utf8_lossy(&event.payload),
            event.source
        );
    }
    println!("\nall plant-floor alerts crossed the TCP bridge to the monitoring host.");
    Ok(())
}
