//! Closed-loop adaptation: a correlated aperiodic burst floods every
//! processor at once, and the **governor** — not an operator, not a
//! pre-programmed schedule — detects the accepted-ratio collapse and
//! swaps the live system into its defensive configuration.
//!
//! Three acts:
//!
//! 1. **Governed simulation**: the same correlated burst hits a `J_N_N`
//!    system three ways — statically, with PR 3's *scripted* mode
//!    schedule (an operator who knows when the burst starts), and under a
//!    `GovernorPolicy` with **no schedule at all**. The governor must
//!    recover accepted utilization comparably to the script it replaces.
//! 2. **Threaded runtime**: `System::spawn_governor` senses a live
//!    overload through `SystemReport` windows and actuates the two-phase
//!    swap on its own.
//! 3. **Two-host quorum**: a TCP-bridged federation is registered as a
//!    *voting* prepare-quorum member: its ack is required for commit, and
//!    withholding it (a simulated partition) aborts the swap cleanly with
//!    `ReconfigAbortReason::AckTimeout`.
//!
//! ```sh
//! cargo run --release --example governed_recovery
//! ```

use std::time::Duration as StdDuration;

use rtcm::core::govern::{GovernorPolicy, GovernorRule, Metric, Trigger};
use rtcm::core::reconfig::ModeSchedule;
use rtcm::core::task::TaskId;
use rtcm::core::time::{Duration, Time};
use rtcm::rt::{
    QuorumMember, QuorumOptions, ReconfigAbortReason, ReconfigureError, RtOptions, System,
};
use rtcm::sim::{
    simulate_governed_recorded, simulate_recorded, simulate_recorded_with_schedule, JobRecord,
    SimConfig,
};
use rtcm::workload::{CorrelatedBurstScenario, RandomWorkload};
use rtcm_config::configure_with;

/// Utilization-weighted accepted ratio of the arrivals inside `[lo, hi)`.
fn window_ratio(records: &[JobRecord], lo: Time, hi: Time) -> f64 {
    let mut arrived = 0.0;
    let mut released = 0.0;
    for r in records.iter().filter(|r| r.arrival >= lo && r.arrival < hi) {
        arrived += r.utilization;
        if r.released {
            released += r.utilization;
        }
    }
    if arrived > 0.0 {
        released / arrived
    } else {
        1.0
    }
}

fn print_buckets(label: &str, records: &[JobRecord], horizon_secs: u64) {
    print!("  {label:<22}");
    for bucket in 0..horizon_secs / 10 {
        let lo = Time::ZERO + Duration::from_secs(bucket * 10);
        let hi = Time::ZERO + Duration::from_secs((bucket + 1) * 10);
        print!("{:>5.0}", window_ratio(records, lo, hi) * 100.0);
    }
    println!("   (% accepted / 10 s)");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Act 1: governed simulation vs. the scripted operator -----------
    let scenario = CorrelatedBurstScenario {
        horizon: Duration::from_secs(60),
        burst_start: Duration::from_secs(20),
        burst_duration: Duration::from_secs(20),
        intensity: 10.0,
        // A healthy 0.3-target baseline: the collapse the governor sees is
        // the burst, not background noise.
        workload: RandomWorkload { target_utilization: 0.3, ..Default::default() },
        ..Default::default()
    };
    let (tasks, trace) = scenario.generate(7)?;
    let baseline = "J_N_N".parse()?;
    let defensive = "T_T_T".parse()?;
    println!(
        "correlated burst: {}x aperiodic rate on ALL processors during [{}, {})\n",
        scenario.intensity,
        scenario.burst_start,
        scenario.burst_end(),
    );

    let cfg = SimConfig::new(baseline);
    let (_, static_records) = simulate_recorded(&tasks, &trace, &cfg)?;

    // PR 3's operator: knows the burst schedule in advance.
    let schedule = ModeSchedule::new()
        .then_at(Time::ZERO + Duration::from_secs(25), defensive)
        .then_at(Time::ZERO + Duration::from_secs(50), baseline);
    let (_, scripted_records) = simulate_recorded_with_schedule(&tasks, &trace, &cfg, &schedule)?;

    // The governor: no schedule, only thresholds + hysteresis + cooldown.
    let policy = GovernorPolicy::defensive_recovery(baseline, defensive);
    println!("policy: {policy}\n");
    let (governed_report, gov_trace, governed_records) =
        simulate_governed_recorded(&tasks, &trace, &cfg, &policy, Duration::from_secs(2))?;

    let horizon_secs = scenario.horizon.as_secs_f64() as u64;
    print_buckets(&format!("static {baseline}"), &static_records, horizon_secs);
    print_buckets("scripted schedule", &scripted_records, horizon_secs);
    print_buckets("governed (no schedule)", &governed_records, horizon_secs);

    println!();
    for s in &gov_trace.switches {
        println!(
            "  governor: {} fired in window {} at {}: {} -> {}",
            s.rule, s.window, s.at, s.from, s.to
        );
    }
    assert!(governed_report.governor_swaps >= 1, "the governor must detect the collapse");
    let switch = &gov_trace.switches[0];
    assert_eq!(switch.to, defensive, "J_N_N -> T_T_T without any pre-programmed schedule");

    // Recovery metric: from the governor's own switch point to burst end.
    let lo = switch.at;
    let hi = Time::ZERO + scenario.burst_end();
    let static_r = window_ratio(&static_records, lo, hi);
    let scripted_r = window_ratio(&scripted_records, lo, hi);
    let governed_r = window_ratio(&governed_records, lo, hi);
    println!(
        "\n  in-burst accepted ratio after the governed switch ({lo}): \
         {static_r:.3} static, {scripted_r:.3} scripted, {governed_r:.3} governed"
    );
    assert!(governed_r > static_r, "the governed swap must recover accepted utilization");
    assert!(
        governed_r >= 0.8 * scripted_r,
        "automatic recovery ({governed_r:.3}) must be comparable to the scripted operator \
         ({scripted_r:.3})"
    );
    println!(
        "  sensing cost: {} windows, each an O(1) counter delta (see micro_govern)",
        governed_report.governor_windows
    );

    // ---- Act 2: the governor on the threaded runtime --------------------
    println!("\nthreaded runtime: a live overload, sensed and answered by the governor");
    let deployment = configure_with(
        &rtcm::config::WorkloadSpec::parse(
            "workload live\nprocessors 1\n\
             task scan periodic period=50ms\n  subtask exec=1ms proc=0\n\
             task alert aperiodic deadline=100ms\n  subtask exec=80ms proc=0\n",
        )?,
        "J_N_N".parse()?,
    )?;
    let system = System::launch(&deployment, RtOptions::fast())?;
    let runtime_policy = GovernorPolicy::new()
        .rule(
            GovernorRule::new(
                "collapse-defense",
                Metric::AcceptedRatio,
                Trigger::Below(0.5),
                2,
                "T_T_T".parse()?,
            )
            .min_arrivals(3),
        )
        .cooldown(3);
    let governor = system.spawn_governor(runtime_policy, StdDuration::from_millis(30))?;

    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    let mut seq = 0;
    while system.services().label() == "J_N_N" && std::time::Instant::now() < deadline {
        let _ = system.submit(TaskId(0), seq);
        let _ = system.submit(TaskId(1), seq);
        seq += 1;
        std::thread::sleep(StdDuration::from_millis(5));
    }
    assert_eq!(system.services().label(), "T_T_T", "the governor swapped the live system");
    for event in governor.stop() {
        match event.outcome {
            Ok(report) => {
                println!("  governor committed: {} -> {report}", event.decision.rule_name)
            }
            Err(e) => println!("  governor aborted: {e}"),
        }
    }
    assert!(system.quiesce(StdDuration::from_secs(10)));
    let stats = system.shutdown();
    println!(
        "  {} windows sensed, {} governor swaps, accepted ratio {}",
        stats.governor_windows, stats.governor_swaps, stats.ratio
    );

    // ---- Act 3: the bridged host is a voting quorum member --------------
    println!("\ntwo hosts over TCP: the remote federation's ack is required for commit");
    let deployment = configure_with(
        &rtcm::config::WorkloadSpec::parse(
            "workload quorum\nprocessors 2\n\
             task t aperiodic deadline=200ms\n  subtask exec=1ms proc=0\n",
        )?,
        "J_N_N".parse()?,
    )?;
    let mut options = RtOptions::fast();
    options.reconfig_ack_timeout = StdDuration::from_millis(400);
    let system = System::launch(&deployment, options)?;

    use rtcm::events::{remote, topics, Federation, Latency, NodeId};
    let quorum_topics = vec![topics::RECONFIG, topics::RECONFIG_ACK];
    let (addr, _server) =
        remote::listen(system.federation(), NodeId(1), "127.0.0.1:0", quorum_topics.clone())?;
    let remote_host = Federation::new(2, Latency::None, 0);
    let _client = remote::connect(&remote_host, NodeId(0), addr, quorum_topics)?;
    let member = QuorumMember::attach(&remote_host, NodeId(1), QuorumOptions::default())?;
    system.register_remote_voter(member.host_id());

    let report = system.reconfigure("T_T_T".parse()?)?;
    println!(
        "  commit with the remote vote: {} local + {} remote acks, epoch {}",
        report.acked_nodes, report.acked_remote, report.epoch
    );

    // Partition: the member withholds its vote; the swap must abort
    // cleanly, old configuration intact.
    member.set_holding(true);
    let err = system.reconfigure("J_N_N".parse()?).unwrap_err();
    println!("  partitioned remote: {err}");
    assert!(matches!(
        err,
        ReconfigureError::Aborted { reason: ReconfigAbortReason::AckTimeout, .. }
    ));
    assert_eq!(system.services().label(), "T_T_T", "no partial application");

    let stats = system.shutdown();
    println!(
        "  abort breakdown: {} ack-timeout / {} validation / {} foreign-coordinator",
        stats.reconfig_abort_reasons.ack_timeout,
        stats.reconfig_abort_reasons.validation,
        stats.reconfig_abort_reasons.foreign_coordinator,
    );

    println!("\nthe loop is closed: load is sensed, policy decides, the two-phase protocol");
    println!("actuates — and bridged hosts vote on every swap instead of watching it happen.");
    Ok(())
}
