//! From workload specification to XML deployment plan to running system —
//! the paper's Figure 4 pipeline end to end.
//!
//! ```sh
//! cargo run --example deployment_plan
//! ```

use std::time::Duration as StdDuration;

use rtcm::config::{configure, CpsCharacteristics, OverheadTolerance, WorkloadSpec};
use rtcm::core::task::TaskId;
use rtcm::rt::{RtOptions, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec::parse(
        "\
workload figure4-demo
processors 2

task telemetry periodic period=400ms
  subtask exec=8ms proc=0 replicas=1

task command aperiodic deadline=150ms
  subtask exec=3ms proc=1
",
    )?;

    // Figure 4's example answers: 1. N  2. Y  3. Y  4. PT  -> all per-task.
    let answers = CpsCharacteristics {
        job_skipping: false,
        component_replication: true,
        state_persistency: true,
        overhead_tolerance: OverheadTolerance::PerTask,
    };
    let deployment = configure(&spec, &answers)?;
    println!("{}", rtcm::config::summarize(&deployment));

    println!("generated XML deployment plan:\n");
    println!("{}", deployment.plan.to_xml());

    // Launch the plan and push a few jobs through it.
    let system = System::launch(&deployment, RtOptions::fast())?;
    for seq in 0..3 {
        system.submit(TaskId(0), seq)?;
        system.submit(TaskId(1), seq)?;
    }
    assert!(system.quiesce(StdDuration::from_secs(10)));
    let report = system.shutdown();
    println!(
        "launched and ran: {} jobs completed, {} deadline misses, {} admission test(s)",
        report.jobs_completed,
        report.deadline_misses,
        report.ac_test.count()
    );
    Ok(())
}
