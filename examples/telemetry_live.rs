//! The telemetry plane, live: scrape a running system over real TCP while
//! jobs flow and a bridged two-host reconfiguration commits — the
//! "watch it, don't stop it" counterpart to the end-of-run report.
//!
//! Four acts:
//!
//! 1. **Mount**: a `System` under load serves `GET /metrics` (Prometheus
//!    text exposition v0.0.4) and `GET /trace` (JSON lines) from a
//!    dependency-free OAM endpoint; the hot paths record into lock-free
//!    counters and log2-bucketed histograms, so scraping never touches
//!    the report mutex.
//! 2. **Scrape mid-run**: curl-style fetches show live counters and
//!    percentile-ready histogram buckets while jobs are still in flight.
//! 3. **Bridged swap**: a TCP-bridged remote host votes on a
//!    reconfiguration; both hosts' `/trace` dumps carry the *same*
//!    deterministic swap trace id, so one grep correlates the distributed
//!    protocol without any clock alignment.
//! 4. **Percentiles**: p50/p90/p99 end-to-end response straight from the
//!    histogram — numbers the old mean/min/max report could not show.
//!
//! ```sh
//! cargo run --release --example telemetry_live
//! ```

use std::time::Duration as StdDuration;

use rtcm::config::{configure_with, WorkloadSpec};
use rtcm::core::task::TaskId;
use rtcm::events::{remote, topics, Federation, Latency, NodeId};
use rtcm::rt::{QuorumMember, QuorumOptions, RtOptions, System};
use rtcm::telemetry::{scrape, TraceRecord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Act 1: a system under load, with the OAM endpoint mounted ------
    let deployment = configure_with(
        &WorkloadSpec::parse(
            "workload telemetry\nprocessors 2\n\
             task scan periodic period=20ms\n  subtask exec=1ms proc=0 replicas=1\n\
             task alert aperiodic deadline=50ms\n  subtask exec=1ms proc=1\n",
        )?,
        "J_N_N".parse()?,
    )?;
    let system = System::launch(&deployment, RtOptions::fast())?;
    let oam = system.serve_oam("127.0.0.1:0")?;
    println!("OAM endpoint listening on http://{}", oam.addr());

    // ---- Act 3 wiring: a bridged remote host joins the prepare quorum ---
    let quorum_topics = vec![topics::RECONFIG, topics::RECONFIG_ACK];
    let (addr, _server) =
        remote::listen(system.federation(), NodeId(1), "127.0.0.1:0", quorum_topics.clone())?;
    let remote_host = Federation::new(2, Latency::None, 0);
    let _client = remote::connect(&remote_host, NodeId(0), addr, quorum_topics)?;
    let member = QuorumMember::attach(&remote_host, NodeId(1), QuorumOptions::default())?;
    system.register_remote_voter(member.host_id());

    // ---- Act 2: scrape while jobs are in flight -------------------------
    for seq in 0..40 {
        system.submit(TaskId(0), seq)?;
        system.submit(TaskId(1), seq)?;
        if seq == 20 {
            let page = scrape(oam.addr(), "/metrics")?;
            println!("\nmid-run scrape (selected lines):");
            for line in page.lines().filter(|l| {
                l.starts_with("rtcm_jobs_arrived_total")
                    || l.starts_with("rtcm_jobs_completed_total")
                    || l.starts_with("rtcm_jobs_in_flight")
                    || l.starts_with("rtcm_build_info")
            }) {
                println!("  {line}");
            }
            // The swap happens mid-burst; its trace shows up in Act 3.
            let report = system.reconfigure("T_T_T".parse()?)?;
            println!("\nswap committed mid-burst: {report}");
        }
    }
    assert!(system.quiesce(StdDuration::from_secs(10)), "all jobs drain");

    // ---- Act 3: one trace id correlates both hosts ----------------------
    // The coordinator minted the id (deterministically, from its identity
    // and the epoch — see `proto::swap_trace`) and every phase message
    // carried it, so grepping the *other* host's dump for the id read off
    // this one is all the correlation machinery there is.
    let swap_trace = system
        .telemetry()
        .trace
        .snapshot()
        .iter()
        .find(|r| r.stage == "reconfig_commit")
        .map(|r| r.trace)
        .expect("the committed swap is in the coordinator's trace");
    println!("\nswap trace id {swap_trace:#018x} as seen from each host:");
    let local: Vec<TraceRecord> =
        system.telemetry().trace.snapshot().into_iter().filter(|r| r.trace == swap_trace).collect();
    for r in &local {
        println!("  coordinator host {:>2}  {:<16} {}", r.host, r.stage, r.detail);
    }
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    let witnessed = loop {
        let seen: Vec<TraceRecord> =
            member.trace().snapshot().into_iter().filter(|r| r.trace == swap_trace).collect();
        if seen.iter().any(|r| r.stage == "reconfig_commit") {
            break seen;
        }
        assert!(std::time::Instant::now() < deadline, "member never saw the commit");
        std::thread::sleep(StdDuration::from_millis(5));
    };
    for r in &witnessed {
        println!("  member host      {:>2}  {:<16} {}", r.host, r.stage, r.detail);
    }
    assert!(!local.is_empty() && !witnessed.is_empty(), "both hosts traced the swap");

    // ---- Act 4: percentiles from the histograms -------------------------
    let response = system.telemetry().response.snapshot();
    println!("\nend-to-end response percentiles ({} jobs):", response.count);
    for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        println!("  {label}: {:.3} ms", response.quantile(q) as f64 / 1e6);
    }

    let final_page = scrape(oam.addr(), "/metrics")?;
    let trace_lines = scrape(oam.addr(), "/trace")?.lines().count();
    println!(
        "\nfinal scrape: {} exposition lines, {} trace records over HTTP",
        final_page.lines().count(),
        trace_lines
    );

    let report = system.shutdown();
    println!(
        "done: {} jobs completed, {} swaps, 0 locks taken by any scrape while they ran.",
        report.jobs_completed, report.reconfig_swaps
    );
    oam.shutdown();
    Ok(())
}
