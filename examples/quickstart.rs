//! Quickstart: describe a workload, answer the four questions, simulate.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rtcm::config::{configure, CpsCharacteristics, OverheadTolerance, WorkloadSpec};
use rtcm::core::time::Duration;
use rtcm::sim::{simulate, SimConfig};
use rtcm::workload::{ArrivalConfig, ArrivalTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the end-to-end tasks and where their subtasks run.
    let spec = WorkloadSpec::parse(
        "\
workload quickstart
processors 3

# A periodic control loop: sense on P0, actuate on P2.
task control-loop periodic period=500ms
  subtask exec=20ms proc=0 replicas=1
  subtask exec=10ms proc=2

# An aperiodic operator command with a 300 ms end-to-end deadline.
task operator-command aperiodic deadline=300ms
  subtask exec=5ms proc=1 replicas=0
  subtask exec=5ms proc=2
",
    )?;

    // 2. Answer the configuration engine's four questions (§6).
    let answers = CpsCharacteristics {
        job_skipping: true,          // C1: losing one job is tolerable
        component_replication: true, // C3: components have duplicates
        state_persistency: false,    // C2: stateless (proportional control)
        overhead_tolerance: OverheadTolerance::PerJob,
    };
    for (i, q) in CpsCharacteristics::questions().iter().enumerate() {
        println!("Q{}: {q}", i + 1);
    }
    let deployment = configure(&spec, &answers)?;
    println!(
        "\nselected strategies: {}   (J = per job, T = per task, N = off)",
        deployment.services
    );

    // 3. Replay a deterministic arrival trace through the simulator.
    let trace = ArrivalTrace::generate(
        &deployment.tasks,
        &ArrivalConfig { horizon: Duration::from_secs(60), ..ArrivalConfig::default() },
        42,
    );
    let report = simulate(&deployment.tasks, &trace, &SimConfig::new(deployment.services))?;

    println!("\n60 virtual seconds later:");
    println!("  accepted utilization ratio: {:.3}", report.ratio.ratio());
    println!("  jobs completed:             {}", report.jobs_completed);
    println!("  deadline misses:            {}", report.deadline_misses);
    println!("  mean end-to-end response:   {:.2} ms", report.response.mean().as_secs_f64() * 1e3);
    println!("  idle-reset reports:         {}", report.ir_reports);
    Ok(())
}
