//! Visualize the preemptive EDMS schedule: an ASCII Gantt chart of the
//! execution trace, showing an urgent alert preempting a slow control
//! task mid-execution.
//!
//! ```sh
//! cargo run --example gantt
//! ```

use rtcm::core::task::{ProcessorId, TaskBuilder, TaskId, TaskSet};
use rtcm::core::time::{Duration, Time};
use rtcm::sim::{simulate_traced, SimConfig};
use rtcm::workload::{ArrivalConfig, ArrivalTrace, Phasing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slow two-stage control loop and an urgent single-stage alert
    // sharing processors 0 and 1.
    let control = TaskBuilder::periodic(TaskId(0), Duration::from_millis(100))
        .name("control")
        .subtask(Duration::from_millis(30), ProcessorId(0), [])
        .subtask(Duration::from_millis(20), ProcessorId(1), [])
        .build()?;
    let alert = TaskBuilder::periodic(TaskId(1), Duration::from_millis(40))
        .name("alert")
        .subtask(Duration::from_millis(6), ProcessorId(0), [])
        .build()?;
    let tasks = TaskSet::from_tasks([control, alert])?;

    let trace = ArrivalTrace::generate(
        &tasks,
        &ArrivalConfig {
            horizon: Duration::from_millis(200),
            poisson_factor: 2.0,
            phasing: Phasing::Simultaneous,
        },
        0,
    );
    let (report, spans) = simulate_traced(&tasks, &trace, &SimConfig::ideal("J_N_N".parse()?))?;

    // Render: one row per processor, one column per millisecond.
    const HORIZON_MS: u64 = 200;
    println!("EDMS schedule, 200 ms ('0' = control, '1' = alert, '.' = idle):\n");
    for proc in 0..2u16 {
        let mut row = vec!['.'; HORIZON_MS as usize];
        for span in spans.iter().filter(|s| s.processor == proc) {
            let from = span.start.elapsed_since(Time::ZERO).as_millis();
            let to = span.end.elapsed_since(Time::ZERO).as_millis().min(HORIZON_MS);
            let glyph = char::from_digit(span.job.task.0, 10).unwrap_or('?');
            for slot in row.iter_mut().take(to as usize).skip(from as usize) {
                *slot = glyph;
            }
        }
        let line: String = row.into_iter().collect();
        println!("P{proc} |{}|", &line[..100]);
        println!("   |{}|", &line[100..]);
    }
    let preemptions = spans.iter().filter(|s| !s.completed).count();
    println!(
        "\n{} jobs completed, {} misses, {} preemption(s) — the alert slices into the\n\
         control task's stage on P0 whenever their releases collide.",
        report.jobs_completed, report.deadline_misses, preemptions
    );
    Ok(())
}
