//! The paper's motivating scenario (§1): an industrial plant monitoring
//! system where periodic sensor scans coexist with aperiodic hazard alerts
//! that must reach the fail-safe actuator within an end-to-end deadline —
//! run on the *threaded* runtime with real clocks and the federated event
//! channel.
//!
//! ```sh
//! cargo run --example plant_monitoring
//! ```

use std::time::Duration as StdDuration;

use rtcm::config::{configure_with, WorkloadSpec};
use rtcm::core::task::TaskId;
use rtcm::rt::{RtOptions, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec::parse(
        "\
workload plant-monitor
processors 3

# Periodic pressure scans on the sensor processor, analyzed on P1.
task pressure-scan periodic period=200ms
  subtask exec=10ms proc=0 replicas=2
  subtask exec=10ms proc=1

# Periodic temperature scans.
task temperature-scan periodic period=300ms
  subtask exec=10ms proc=1 replicas=2

# The aperiodic hazard alert: detected on P0, cross-checked on P1,
# fail-safe actuation on P2 — all within 250 ms end to end.
task hazard-alert aperiodic deadline=250ms
  subtask exec=5ms proc=0
  subtask exec=5ms proc=1
  subtask exec=5ms proc=2
",
    )?;

    // Critical control: no job skipping -> per-task AC; stateful -> LB per
    // task; idle resetting per task keeps aperiodic headroom available.
    let deployment = configure_with(&spec, "T_T_T".parse()?)?;
    println!("strategies: {}  (hazard alerts always admitted per arrival)", deployment.services);
    let alert_prio = deployment.priorities[&TaskId(2)];
    println!("EDMS: hazard-alert runs at {alert_prio} (most urgent deadline)\n");

    let system = System::launch(&deployment, RtOptions::default())?;
    // A live plant is watched, not stopped: the OAM endpoint serves
    // Prometheus-style metrics and the job trace for the whole run.
    let oam = system.serve_oam("127.0.0.1:0")?;
    println!("telemetry: curl http://{}/metrics  (or /trace)\n", oam.addr());

    // Drive two seconds of plant operation: scans every period, plus a
    // burst of hazard alerts when the "valve blocks" at t = 1 s.
    let mut scan_seq = 0;
    let mut temp_seq = 0;
    let mut alert_seq = 0;
    for tick_ms in (0..2_000).step_by(100) {
        if tick_ms % 200 == 0 {
            system.submit(TaskId(0), scan_seq)?;
            scan_seq += 1;
        }
        if tick_ms % 300 == 0 {
            system.submit(TaskId(1), temp_seq)?;
            temp_seq += 1;
        }
        if (1_000..1_400).contains(&tick_ms) {
            system.submit(TaskId(2), alert_seq)?;
            alert_seq += 1;
            println!("t={tick_ms}ms  !! hazard alert #{alert_seq} raised");
        }
        if tick_ms == 1_400 {
            // Mid-run scrape, exactly what an operator's dashboard sees.
            let page = rtcm::telemetry::scrape(oam.addr(), "/metrics")?;
            let line = |name: &str| {
                page.lines().find(|l| l.starts_with(name)).unwrap_or("(absent)").to_string()
            };
            println!("t={tick_ms}ms  scrape: {}", line("rtcm_jobs_arrived_total"));
            println!("t={tick_ms}ms  scrape: {}", line("rtcm_jobs_in_flight"));
        }
        std::thread::sleep(StdDuration::from_millis(100));
    }

    assert!(system.quiesce(StdDuration::from_secs(10)), "plant drains");
    let response = system.telemetry().response.snapshot();
    let report = system.shutdown();
    oam.shutdown();

    println!("\nafter 2 s of operation:");
    println!("  jobs completed:           {}", report.jobs_completed);
    println!("  deadline misses:          {}", report.deadline_misses);
    println!("  mean end-to-end response: {:.2} ms", report.response.mean().as_secs_f64() * 1e3);
    println!("  max  end-to-end response: {:.2} ms", report.response.max().as_secs_f64() * 1e3);
    println!(
        "  response percentiles:     p50 {:.2} ms, p99 {:.2} ms",
        response.quantile(0.50) as f64 / 1e6,
        response.quantile(0.99) as f64 / 1e6
    );
    println!(
        "  admission round-trip:     mean {:.2} ms (hold + 2 x comm + test + release)",
        report.total_no_realloc.mean().as_secs_f64() * 1e3
    );
    if report.deadline_misses == 0 {
        println!("\nevery hazard alert reached the fail-safe actuator in time.");
    }
    Ok(())
}
