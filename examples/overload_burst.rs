//! Transient overload: an 8× burst of aperiodic alerts hits a monitored
//! plant, and the configurable admission control sheds exactly the load
//! that would otherwise cause deadline misses (the paper's §1 motivation
//! for job skipping as an overload strategy).
//!
//! ```sh
//! cargo run --release --example overload_burst
//! ```

use rtcm::core::time::{Duration, Time};
use rtcm::sim::{simulate_recorded, SimConfig};
use rtcm::workload::BurstScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = BurstScenario {
        horizon: Duration::from_secs(120),
        burst_start: Duration::from_secs(40),
        burst_duration: Duration::from_secs(30),
        intensity: 8.0,
        ..BurstScenario::default()
    };
    let (tasks, trace) = scenario.generate(2024)?;
    println!(
        "{} tasks; {} arrivals; 8x alert burst during [{}, {})\n",
        tasks.len(),
        trace.len(),
        scenario.burst_start,
        scenario.burst_end()
    );

    for services in ["T_N_N", "J_J_J"] {
        let (report, records) =
            simulate_recorded(&tasks, &trace, &SimConfig::new(services.parse()?))?;

        // 10-second buckets of acceptance ratio, by utilization weight.
        println!(
            "strategy {services}: overall ratio {:.3}, misses {}",
            report.ratio.ratio(),
            report.deadline_misses
        );
        print!("  t(s) ");
        for bucket in 0..12 {
            let lo = Time::ZERO + Duration::from_secs(bucket * 10);
            let hi = Time::ZERO + Duration::from_secs((bucket + 1) * 10);
            let mut arrived = 0.0;
            let mut released = 0.0;
            for r in records.iter().filter(|r| r.arrival >= lo && r.arrival < hi) {
                arrived += r.utilization;
                if r.released {
                    released += r.utilization;
                }
            }
            let ratio = if arrived > 0.0 { released / arrived } else { 1.0 };
            print!("{:>5.0}", ratio * 100.0);
        }
        println!("   (% accepted per 10 s bucket)");
    }
    println!("\nDuring the burst window the admission controller sheds load instead of");
    println!("missing deadlines; per-job strategies recover instantly afterwards.");
    Ok(())
}
