//! Live reconfiguration: an overloaded per-job system recovers by
//! switching to per-task admission **mid-burst** — the paper's §5
//! run-time attribute modification generalized to the full
//! `ServiceConfig`, executed without dropping a single admitted job.
//!
//! Three acts:
//!
//! 1. **Simulation**: the same 8× aperiodic alert burst hits a `J_N_N`
//!    system twice — once statically, once with a defensive mode schedule
//!    that swaps to `T_T_T` five seconds into the burst (reseeding the
//!    live periodic tasks into reservations) and relaxes back afterwards.
//! 2. **Threaded runtime**: a running `System` executes the same swap via
//!    the quiesce-free two-phase protocol, reporting its transition cost
//!    (swap latency, decisions deferred, jobs in flight).
//! 3. **Federation**: a TCP-bridged remote host observes the prepare and
//!    commit events of that swap, the way the paper's multi-machine
//!    testbed would learn of a mode change.
//!
//! ```sh
//! cargo run --release --example live_reconfig
//! ```

use std::time::Duration as StdDuration;

use rtcm::core::task::TaskId;
use rtcm::core::time::{Duration, Time};
use rtcm::events::{remote, topics, Federation, Latency, NodeId};
use rtcm::rt::proto::{ReconfigMsg, ReconfigPhase};
use rtcm::rt::{RtOptions, System};
use rtcm::sim::{simulate_recorded, simulate_recorded_with_schedule, JobRecord, SimConfig};
use rtcm::workload::ModeChangeScenario;
use rtcm_config::configure_with;

/// Utilization-weighted accepted ratio of the arrivals inside `[lo, hi)`.
fn window_ratio(records: &[JobRecord], lo: Time, hi: Time) -> f64 {
    let mut arrived = 0.0;
    let mut released = 0.0;
    for r in records.iter().filter(|r| r.arrival >= lo && r.arrival < hi) {
        arrived += r.utilization;
        if r.released {
            released += r.utilization;
        }
    }
    if arrived > 0.0 {
        released / arrived
    } else {
        1.0
    }
}

fn print_buckets(label: &str, records: &[JobRecord], horizon_secs: u64) {
    print!("  {label:<26}");
    for bucket in 0..horizon_secs / 10 {
        let lo = Time::ZERO + Duration::from_secs(bucket * 10);
        let hi = Time::ZERO + Duration::from_secs((bucket + 1) * 10);
        print!("{:>5.0}", window_ratio(records, lo, hi) * 100.0);
    }
    println!("   (% accepted / 10 s)");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Act 1: simulated mode-change experiment ------------------------
    let scenario = ModeChangeScenario::default();
    let (tasks, trace, schedule) = scenario.generate(7)?;
    println!(
        "burst: {}x aperiodic rate during [{}, {}); defensive switch {} -> {} at {}\n",
        scenario.burst.intensity,
        scenario.burst.burst_start,
        scenario.burst.burst_end(),
        scenario.baseline,
        scenario.defensive,
        scenario.switch_at()
    );

    let cfg = SimConfig::new(scenario.baseline);
    let (static_report, static_records) = simulate_recorded(&tasks, &trace, &cfg)?;
    let (switched_report, switched_records) =
        simulate_recorded_with_schedule(&tasks, &trace, &cfg, &schedule)?;

    let horizon_secs = scenario.burst.horizon.as_secs_f64() as u64;
    print_buckets(&format!("static {}", scenario.baseline), &static_records, horizon_secs);
    print_buckets("with mode schedule", &switched_records, horizon_secs);

    for handover in &switched_report.mode_changes {
        println!("  handover: {handover}");
    }

    // Recovery metric: accepted ratio from the switch to the burst end.
    let lo = scenario.switch_at();
    let hi = Time::ZERO + scenario.burst.burst_end();
    let before = window_ratio(&static_records, lo, hi);
    let after = window_ratio(&switched_records, lo, hi);
    println!(
        "\n  in-burst accepted ratio after the switch point: {:.3} static vs {:.3} switched",
        before, after
    );
    println!(
        "  deadline misses: {} static, {} switched",
        static_report.deadline_misses, switched_report.deadline_misses
    );
    assert!(after > before, "the defensive mode change must recover accepted utilization");

    // ---- Act 2: the same swap on the threaded runtime -------------------
    println!("\nthreaded runtime: swapping a live system J_N_N -> T_T_T under load");
    let deployment = configure_with(
        &rtcm::config::WorkloadSpec::parse(
            "workload live\nprocessors 2\n\
             task scan periodic period=20ms\n  subtask exec=1ms proc=0 replicas=1\n\
             task alert aperiodic deadline=50ms\n  subtask exec=1ms proc=1\n",
        )?,
        "J_N_N".parse()?,
    )?;
    let system = System::launch(&deployment, RtOptions::fast())?;

    // A TCP-bridged observer federation (Act 3) watches the swap.
    let (addr, _server) =
        remote::listen(system.federation(), NodeId(1), "127.0.0.1:0", vec![topics::RECONFIG])?;
    let observer_host = Federation::new(2, Latency::None, 0);
    let _client = remote::connect(&observer_host, NodeId(0), addr, vec![topics::RECONFIG])?;
    let observer = observer_host.handle(NodeId(1))?.subscribe(topics::RECONFIG);

    for seq in 0..25 {
        system.submit(TaskId(0), seq)?;
        system.submit(TaskId(1), seq)?;
        if seq == 12 {
            let report = system.reconfigure("T_T_T".parse()?)?;
            println!("  {report}");
        }
    }
    assert!(system.quiesce(StdDuration::from_secs(10)));
    let stats = system.shutdown();
    println!(
        "  runtime: {} jobs completed, {} swaps, mean swap latency {}, {} decisions deferred",
        stats.jobs_completed,
        stats.reconfig_swaps,
        stats.reconfig_latency.mean(),
        stats.reconfig_deferred,
    );

    // ---- Act 3: the swap as seen from the remote host -------------------
    for _ in 0..2 {
        let event = observer.recv_timeout(StdDuration::from_secs(5))?;
        let msg: ReconfigMsg = rtcm::rt::proto::decode(&event.payload);
        println!(
            "  remote host observed: epoch {} {} -> {}",
            msg.epoch,
            match msg.phase {
                ReconfigPhase::Prepare => "prepare",
                ReconfigPhase::Commit => "commit",
                ReconfigPhase::Abort => "abort",
            },
            msg.services
        );
    }

    println!("\nthe full ServiceConfig is now a run-time attribute: admitted jobs kept their");
    println!("guarantees across the swap, and the mode change propagated over real TCP.");
    Ok(())
}
