//! The paper's §7.2 situation as a story: three production-line
//! processors run hot while two standby processors hold component
//! duplicates. Without load balancing the hot group drops most of its
//! work; per-task load balancing moves tasks to the duplicates.
//!
//! ```sh
//! cargo run --release --example imbalanced_failover
//! ```

use rtcm::core::time::Duration;
use rtcm::sim::{simulate, SimConfig};
use rtcm::workload::{ArrivalConfig, ArrivalTrace, ImbalancedWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ImbalancedWorkload::default(); // 3 loaded @0.7 + 2 standby
    let tasks = workload.generate(17)?;
    let trace = ArrivalTrace::generate(
        &tasks,
        &ArrivalConfig { horizon: Duration::from_secs(120), ..ArrivalConfig::default() },
        17,
    );
    println!(
        "{} tasks, primaries on P0-P2 at 0.7 synthetic utilization, duplicates on P3-P4\n",
        tasks.len()
    );

    println!(
        "{:<22} {:>8} {:>10} {:>18}",
        "configuration", "ratio", "reallocs", "standby busy time"
    );
    for (label, description) in
        [("J_T_N", "no load balancing"), ("J_T_T", "LB per task"), ("J_T_J", "LB per job")]
    {
        let report = simulate(&tasks, &trace, &SimConfig::new(label.parse()?))?;
        let standby_busy: f64 = report.cpu_busy[3..].iter().map(|d| d.as_secs_f64()).sum();
        println!(
            "{:<22} {:>8.3} {:>10} {:>16.1}s",
            format!("{label} ({description})"),
            report.ratio.ratio(),
            report.reallocations,
            standby_busy
        );
    }
    println!(
        "\nload balancing raises acceptance by moving work onto the duplicates; the\n\
         standby processors go from idle to carrying real execution time."
    );
    Ok(())
}
