//! Explore all 15 valid strategy combinations on one workload — a
//! miniature of the paper's Figure 5 — and show that the 3 invalid
//! combinations are refused by the configuration engine.
//!
//! ```sh
//! cargo run --release --example config_explorer
//! ```

use rtcm::config::{configure_with, WorkloadSpec};
use rtcm::core::strategy::ServiceConfig;
use rtcm::core::time::Duration;
use rtcm::sim::{simulate, SimConfig};
use rtcm::workload::{ArrivalConfig, ArrivalTrace, RandomWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One §7.1-style workload instance.
    let tasks = RandomWorkload::default().generate(7)?;
    let trace = ArrivalTrace::generate(
        &tasks,
        &ArrivalConfig { horizon: Duration::from_secs(120), ..ArrivalConfig::default() },
        7,
    );
    println!(
        "workload: {} tasks, {} arrivals over 120 virtual seconds\n",
        tasks.len(),
        trace.len()
    );

    println!("{:<8} {:>8} {:>8} {:>8}", "combo", "ratio", "misses", "resets");
    for services in ServiceConfig::all_valid() {
        let report = simulate(&tasks, &trace, &SimConfig::new(services))?;
        println!(
            "{:<8} {:>8.3} {:>8} {:>8}",
            services.label(),
            report.ratio.ratio(),
            report.deadline_misses,
            report.ir_reports
        );
    }

    // The engine refuses the contradictory combinations.
    println!();
    let spec = WorkloadSpec::from_task_set("explorer", 5, &tasks);
    for invalid in ServiceConfig::all().into_iter().filter(|c| !c.is_valid()) {
        let err = configure_with(&spec, invalid).unwrap_err();
        println!("rejected {}: {err}", invalid.label());
    }
    Ok(())
}
