//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] module — cloneable multi-producer
//! multi-consumer unbounded channels — and a [`select!`] macro covering
//! the subset this workspace uses (`recv(rx) -> msg => { .. }` arms with
//! an optional trailing `default(timeout) => { .. }`).
//!
//! Implementation notes: each channel is a `Mutex<VecDeque>` plus a
//! per-channel condvar; `select!` additionally waits on a process-global
//! generation counter that every send/disconnect bumps, so a blocking
//! select wakes promptly without per-channel waiter registration.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC unbounded channels with crossbeam's API shape.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Process-global select signal: a generation counter bumped by every
    /// send and disconnect, so `select!` can block on multiple channels.
    ///
    /// The counter is an atomic so the send fast path costs one
    /// `fetch_add` plus one relaxed waiter check; the mutex/condvar pair
    /// is only touched while a `select!` is actually parked. The sender
    /// takes the (empty) mutex before notifying, which orders the bump
    /// against a parking waiter's re-check and rules out lost wakeups.
    static SELECT_GEN: AtomicU64 = AtomicU64::new(0);
    static SELECT_WAITERS: AtomicUsize = AtomicUsize::new(0);
    static SELECT_PARK: Mutex<()> = Mutex::new(());
    static SELECT_CV: Condvar = Condvar::new();

    fn bump_select_gen() {
        SELECT_GEN.fetch_add(1, Ordering::SeqCst);
        if SELECT_WAITERS.load(Ordering::SeqCst) > 0 {
            // Lock/unlock before notifying: a waiter between its gen
            // re-check and its condvar wait holds the mutex, so this
            // cannot slip into that window.
            drop(SELECT_PARK.lock().unwrap_or_else(|e| e.into_inner()));
            SELECT_CV.notify_all();
        }
    }

    #[doc(hidden)]
    pub fn __select_generation() -> u64 {
        SELECT_GEN.load(Ordering::SeqCst)
    }

    /// Blocks until the global select generation moves past `seen`, or
    /// until `timeout` elapses. Used by the `select!` macro only.
    #[doc(hidden)]
    pub fn __select_wait(seen: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        SELECT_WAITERS.fetch_add(1, Ordering::SeqCst);
        let mut guard = SELECT_PARK.lock().unwrap_or_else(|e| e.into_inner());
        while SELECT_GEN.load(Ordering::SeqCst) == seen {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (g, _res) =
                SELECT_CV.wait_timeout(guard, remaining).unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        drop(guard);
        SELECT_WAITERS.fetch_sub(1, Ordering::SeqCst);
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable; clones compete for
    /// messages (each message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Creates a "bounded" channel. The stand-in ignores the capacity and
    /// never blocks senders; callers that only rely on delivery semantics
    /// are unaffected.
    #[must_use]
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
                bump_select_gen();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            {
                let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                inner.queue.push_back(msg);
            }
            self.shared.ready.notify_one();
            bump_select_gen();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            match inner.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    // Re-export the macro so `crossbeam::channel::select!` paths work like
    // the real crate's.
    pub use crate::select;
}

/// Waits on multiple channel operations, crossbeam-style.
///
/// Supported subset:
///
/// ```ignore
/// select! {
///     recv(rx_a) -> msg => { ... }
///     recv(rx_b) -> msg => { ... }
///     default(timeout) => { ... }   // optional trailing arm
/// }
/// ```
///
/// Arm bodies must be blocks. Matching crossbeam semantics, a
/// disconnected channel makes its `recv` arm ready with `Err(RecvError)`.
#[macro_export]
macro_rules! select {
    // recv arms + trailing default(timeout).
    ( $( recv($r:expr) -> $res:pat => $body:block $(,)? )+ default($d:expr) => $dbody:block $(,)? ) => {{
        let __select_deadline = ::std::time::Instant::now() + $d;
        '__select: loop {
            let __select_seen = $crate::channel::__select_generation();
            $(
                // Hoist try_recv into a let so the borrow of the receiver
                // ends before the arm body runs (bodies often need &mut
                // access to the same struct the receiver lives in).
                let __select_polled = $crate::channel::Receiver::try_recv(&$r);
                if !matches!(
                    __select_polled,
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty)
                ) {
                    // A diverging arm body (e.g. `return`) makes the
                    // generated `break` unreachable; that is expected.
                    #[allow(unreachable_code)]
                    {
                        let $res = match __select_polled {
                            ::std::result::Result::Ok(__v) => ::std::result::Result::Ok(__v),
                            ::std::result::Result::Err(_) => {
                                ::std::result::Result::Err($crate::channel::RecvError)
                            }
                        };
                        { $body }
                        break '__select;
                    }
                }
            )+
            let __select_now = ::std::time::Instant::now();
            if __select_now >= __select_deadline {
                { $dbody }
                break '__select;
            }
            let __select_wait = ::std::cmp::min(
                __select_deadline - __select_now,
                ::std::time::Duration::from_millis(5),
            );
            $crate::channel::__select_wait(__select_seen, __select_wait);
        }
    }};
    // recv arms only: block until one is ready.
    ( $( recv($r:expr) -> $res:pat => $body:block $(,)? )+ ) => {{
        '__select: loop {
            let __select_seen = $crate::channel::__select_generation();
            $(
                let __select_polled = $crate::channel::Receiver::try_recv(&$r);
                if !matches!(
                    __select_polled,
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty)
                ) {
                    // A diverging arm body (e.g. `return`) makes the
                    // generated `break` unreachable; that is expected.
                    #[allow(unreachable_code)]
                    {
                        let $res = match __select_polled {
                            ::std::result::Result::Ok(__v) => ::std::result::Result::Ok(__v),
                            ::std::result::Result::Err(_) => {
                                ::std::result::Result::Err($crate::channel::RecvError)
                            }
                        };
                        { $body }
                        break '__select;
                    }
                }
            )+
            $crate::channel::__select_wait(
                __select_seen,
                ::std::time::Duration::from_millis(5),
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn clones_compete() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(7).unwrap();
        let got = rx1.try_recv().ok().or_else(|| rx2.try_recv().ok());
        assert_eq!(got, Some(7));
        assert!(rx1.try_recv().is_err() && rx2.try_recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn recv_wakes_across_threads() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(99u32).unwrap();
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn select_picks_ready_arm_and_default() {
        let (tx_a, rx_a) = unbounded::<u8>();
        let (_tx_b, rx_b) = unbounded::<u8>();
        tx_a.send(5).unwrap();
        select! {
            recv(rx_a) -> m => { assert_eq!(m, Ok(5)); }
            recv(rx_b) -> _m => { panic!("rx_b has no message"); }
        }

        // With nothing pending, the default arm must fire.
        select! {
            recv(rx_a) -> _m => { panic!("no message pending") }
            default(Duration::from_millis(20)) => {}
        }
    }

    #[test]
    fn select_blocks_until_cross_thread_send() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(1).unwrap();
        });
        let start = Instant::now();
        select! {
            recv(rx) -> m => { assert_eq!(m.ok(), Some(1)); }
        }
        assert!(start.elapsed() >= Duration::from_millis(10));
        h.join().unwrap();
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        select! {
            recv(rx) -> m => { assert!(m.is_err()); }
        }
    }
}
