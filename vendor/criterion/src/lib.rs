//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Implements the macro/struct surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `BatchSize`, `black_box`) with a
//! simple measurement loop: warm up briefly, then time batches until a
//! fixed measurement budget elapses and report the mean ns/iteration.
//! No statistics, plots, or baseline comparisons.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup
/// per measured call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch upstream.
    SmallInput,
    /// Large inputs: few iterations per batch upstream.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// (iterations, total elapsed) recorded by the routine.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration) -> Self {
        Bencher { warm_up, measure, result: None }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters.max(1) as u32);
        let batch = batch_size_for(per_iter);

        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded
    /// from measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }

        let mut iters: u64 = 0;
        let mut measured = Duration::ZERO;
        while measured < self.measure {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.result = Some((iters, measured));
    }

    /// Like `iter_batched`; the stand-in treats both identically.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, move |mut input| routine(&mut input), size);
    }
}

fn batch_size_for(per_iter: Option<Duration>) -> u64 {
    match per_iter {
        Some(d) if d < Duration::from_nanos(100) => 1000,
        Some(d) if d < Duration::from_micros(10) => 100,
        _ => 1,
    }
}

fn report(name: &str, result: Option<(u64, Duration)>) {
    match result {
        Some((iters, elapsed)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<50} time: {:>12}/iter  ({iters} iters)", format_ns(ns));
        }
        _ => println!("{name:<50} time: <no measurement>"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short budgets: the stand-in favours fast full-suite runs over
        // statistical power.
        Criterion { warm_up: Duration::from_millis(20), measure: Duration::from_millis(120) }
    }
}

impl Criterion {
    /// Accepts (and ignores) criterion's CLI arguments, so
    /// `cargo bench -- <args>` keeps working.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the warm-up budget.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.warm_up, self.measure);
        f(&mut b);
        report(name, b.result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measure);
        f(&mut b);
        report(&label, b.result);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measure);
        f(&mut b, input);
        report(&label, b.result);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_records_iterations() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_batched() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_function("direct", |b| b.iter(|| black_box(42u64.pow(2))));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group!(test_benches, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        let mut c2 = quick();
        c2.bench_function("macro_path", |b| b.iter(|| black_box(0)));
        let _ = c;
    }

    #[test]
    fn macro_expansion_runs() {
        test_benches();
    }
}
