//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a tiny API-compatible subset backed by `std::sync`. The key
//! behavioral difference from `std` that callers rely on is that `lock()`
//! / `read()` / `write()` return guards directly (no poisoning `Result`);
//! a poisoned std lock is recovered transparently, matching parking_lot's
//! "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock with parking_lot's no-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's no-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A condition variable (parking_lot-flavoured, no poisoning).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
