//! Vendored minimal stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply cloneable, immutable, reference-counted
//! byte buffer with the subset of the real crate's API that this workspace
//! uses. Cloning is an `Arc` bump. Like the real crate, [`Bytes::slice`]
//! returns a zero-copy *view* into the same backing allocation — the wire
//! codec relies on this to hand out per-frame payload slices of one
//! received batch buffer without copying.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer (possibly a sub-view of a
/// shared backing allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Creates a buffer from a static slice (copies; the real crate
    /// borrows, but the distinction is invisible to callers here).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contents as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a zero-copy view of `range` within this buffer: the result
    /// shares the backing allocation (an `Arc` bump, no byte is copied).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} past end {end}");
        assert!(end <= self.len, "slice end {end} past buffer length {}", self.len);
        Bytes { data: Arc::clone(&self.data), offset: self.offset + start, len: end - start }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes { data: Arc::new(Vec::new()), offset: 0, len: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::new(v), offset: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

// Equality, ordering and hashing follow the *contents* of the view, not
// the backing allocation — two views of different buffers with the same
// bytes compare equal, exactly like the real crate.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), &[1, 2, 3][..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn constructors() {
        assert_eq!(Bytes::from(&b"hi"[..]).as_ref(), b"hi");
        assert_eq!(Bytes::from("hi").as_ref(), b"hi");
        assert_eq!(Bytes::copy_from_slice(b"xy").to_vec(), b"xy".to_vec());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'a', 0, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\x22\"");
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let s = b.slice(4..12);
        assert_eq!(s.as_ref(), &(4u8..12).collect::<Vec<u8>>()[..]);
        // Same backing allocation: the view's pointer sits inside the
        // parent's slice.
        assert_eq!(s.as_slice().as_ptr(), b.as_slice()[4..].as_ptr());
        // Sub-slicing a view composes offsets.
        let ss = s.slice(2..=3);
        assert_eq!(ss.as_ref(), &[6, 7][..]);
        assert_eq!(s.slice(..).len(), 8);
        assert!(s.slice(3..3).is_empty());
    }

    #[test]
    fn equality_is_content_based_across_views() {
        let a = Bytes::from(vec![9, 1, 2, 9]).slice(1..3);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &Bytes| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    #[should_panic(expected = "past buffer length")]
    fn out_of_range_slice_panics() {
        let _ = Bytes::from(vec![1, 2, 3]).slice(1..5);
    }
}
