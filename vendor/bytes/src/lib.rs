//! Vendored minimal stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply cloneable, immutable, reference-counted
//! byte buffer with the subset of the real crate's API that this workspace
//! uses. Cloning is an `Arc` bump; no slicing views are provided (the
//! event channel only ever moves whole payloads).

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Creates a buffer from a static slice (copies; the real crate
    /// borrows, but the distinction is invisible to callers here).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes(Arc::new(v.into_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(Arc::new(iter.into_iter().collect()))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), &[1, 2, 3][..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn constructors() {
        assert_eq!(Bytes::from(&b"hi"[..]).as_ref(), b"hi");
        assert_eq!(Bytes::from("hi").as_ref(), b"hi");
        assert_eq!(Bytes::copy_from_slice(b"xy").to_vec(), b"xy".to_vec());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'a', 0, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\x22\"");
    }
}
