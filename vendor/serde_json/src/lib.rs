//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! JSON emission and parsing over the Value-based serde stand-in in
//! `vendor/serde`. Covers the workspace's surface: `to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`, [`Value`], and
//! the [`json!`] macro (object/array literals with expression values).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a JSON-ish literal. Keys must be string
/// literals; values are nested literals or serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Map(::std::vec::Vec::new()) };
    ([]) => { $crate::Value::Seq(::std::vec::Vec::new()) };
    ({ $($rest:tt)+ }) => {
        $crate::Value::Map($crate::__json_object!([] $($rest)+))
    };
    ([ $($rest:tt)+ ]) => {
        $crate::Value::Seq($crate::__json_array!([] [] $($rest)+))
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Munches one object body: `"key": <value tokens> , ...`. Value tokens
/// are accumulated until a top-level comma (nested literals arrive as
/// single token trees, so their commas don't split); completed entries
/// accumulate as expressions and emerge as one `vec![..]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ([$($acc:expr,)*]) => { ::std::vec![$($acc,)*] };
    ([$($acc:expr,)*] $key:literal : $($rest:tt)+) => {
        $crate::__json_object_value!([$($acc,)*] $key [] $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_object_value {
    ([$($acc:expr,)*] $key:literal [$($val:tt)+] , $($rest:tt)+) => {
        $crate::__json_object!(
            [$($acc,)* (::std::string::String::from($key), $crate::json!($($val)+)),]
            $($rest)+
        )
    };
    ([$($acc:expr,)*] $key:literal [$($val:tt)+] $(,)?) => {
        ::std::vec![
            $($acc,)*
            (::std::string::String::from($key), $crate::json!($($val)+)),
        ]
    };
    ([$($acc:expr,)*] $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_object_value!([$($acc,)*] $key [$($val)* $next] $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ([$($acc:expr,)*] [$($val:tt)+] , $($rest:tt)+) => {
        $crate::__json_array!([$($acc,)* $crate::json!($($val)+),] [] $($rest)+)
    };
    ([$($acc:expr,)*] [$($val:tt)+] $(,)?) => {
        ::std::vec![$($acc,)* $crate::json!($($val)+),]
    };
    ([$($acc:expr,)*] [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_array!([$($acc,)*] [$($val)* $next] $($rest)*)
    };
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, and always includes a `.` or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no NaN/Infinity; emit null like serde_json.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting accepted by the parser, mirroring real
/// serde_json's recursion limit: `value()` recurses per nesting level, so
/// an unbounded depth would let a corrupt or hostile input (e.g. a frame
/// of a million `[`s through the event-channel bridge) overflow the stack
/// and abort the process instead of returning an error.
const MAX_DEPTH: usize = 128;

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if matches!(self.peek(), Some(b'[') | Some(b'{')) {
            self.depth += 1;
            if self.depth > MAX_DEPTH {
                return Err(Error::msg(format!(
                    "recursion limit exceeded: more than {MAX_DEPTH} nested containers"
                )));
            }
        }
        let value = self.value_inner();
        if matches!(value, Ok(Value::Seq(_)) | Ok(Value::Map(_))) {
            self.depth -= 1;
        }
        value
    }

    fn value_inner(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // emitter; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\"", "1e3"] {
            let v: Value = parse(json).unwrap();
            let back = parse(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = json!({
            "name": "combo",
            "ratios": [0.25, 0.5, 1.0],
            "count": 3u32,
            "nested": { "deep": [1u8, 2u8] },
            "missing": null
        });
        let compact = to_string(&v).unwrap();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".to_string());
        let s = to_string(&v).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn f64_precision_survives() {
        let x = 0.123_456_789_012_345_68_f64;
        let v = Value::F64(x);
        match parse(&to_string(&v).unwrap()).unwrap() {
            Value::F64(y) => assert_eq!(x, y),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Under the limit: parses fine.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
        // A hostile megabyte of '[' returns an error instead of
        // overflowing the stack.
        let hostile = "[".repeat(1_000_000);
        let err = parse(&hostile).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(from_slice::<u64>(b"\xff\xfe").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<u32> = from_str(&to_string(&vec![1u32, 2, 3]).unwrap()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
