//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small, fully functional serialization framework with serde's
//! surface names: `#[derive(Serialize, Deserialize)]`, the
//! `Serialize` / `Deserialize` traits, and (in the sibling `serde_json`
//! stand-in) JSON emit/parse. Internally everything round-trips through a
//! self-describing [`Value`] tree rather than serde's visitor machinery —
//! dramatically simpler, and sufficient for the workspace's needs
//! (config files, wire messages, results dumps).
//!
//! Supported derive shapes: named-field structs, tuple structs (newtypes
//! serialize transparently), and enums with unit / tuple / struct
//! variants (externally tagged, like real serde). Field attributes
//! `#[serde(default)]` and `#[serde(skip)]` are honored.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, order-preserving.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be serialized into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialized value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
///
/// The lifetime parameter mirrors real serde's signature so existing
/// bounds like `for<'de> Deserialize<'de>` keep compiling; this stand-in
/// never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from the serialized value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code.
// ---------------------------------------------------------------------------

/// Fetches required field `name` from an object value (derive helper).
pub fn get_field<T: for<'de> Deserialize<'de>>(
    value: &Value,
    name: &str,
    type_name: &str,
) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v),
        None => Err(Error::msg(format!("missing field `{name}` for {type_name}"))),
    }
}

/// Fetches field `name`, falling back to `Default` when absent or null
/// (derive helper for `#[serde(default)]`).
pub fn get_field_or_default<T: for<'de> Deserialize<'de> + Default>(
    value: &Value,
    name: &str,
) -> Result<T, Error> {
    match value.get(name) {
        Some(Value::Null) | None => Ok(T::default()),
        Some(v) => T::from_value(v),
    }
}

/// Fetches element `index` of an array value (derive helper for tuple
/// structs / variants).
pub fn seq_elem<T: for<'de> Deserialize<'de>>(
    value: &Value,
    index: usize,
    type_name: &str,
) -> Result<T, Error> {
    match value {
        Value::Seq(items) => match items.get(index) {
            Some(v) => T::from_value(v),
            None => Err(Error::msg(format!("array too short for {type_name}: no element {index}"))),
        },
        other => Err(Error::msg(format!("expected array for {type_name}, found {}", other.kind()))),
    }
}

fn type_error<T>(expected: &str, found: &Value) -> Result<T, Error> {
    Err(Error::msg(format!("expected {expected}, found {}", found.kind())))
}

// ---------------------------------------------------------------------------
// Impls for std types.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return type_error("unsigned integer", other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::msg(format!("integer {n} out of range for i64"))
                    })?,
                    other => return type_error("integer", other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Values beyond u64 don't fit JSON numbers losslessly; fall back
        // to a decimal string (accepted back by Deserialize below).
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::U64(n) => Ok(u128::from(*n)),
            Value::I64(n) if *n >= 0 => Ok(*n as u128),
            Value::Str(s) => {
                s.parse::<u128>().map_err(|_| Error::msg(format!("invalid u128 string `{s}`")))
            }
            other => type_error("unsigned integer", other),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        if let Ok(n) = i64::try_from(*self) {
            n.to_value()
        } else {
            Value::Str(self.to_string())
        }
    }
}

impl<'de> Deserialize<'de> for i128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::U64(n) => Ok(i128::from(*n)),
            Value::I64(n) => Ok(i128::from(*n)),
            Value::Str(s) => {
                s.parse::<i128>().map_err(|_| Error::msg(format!("invalid i128 string `{s}`")))
            }
            other => type_error("integer", other),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => type_error("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_error("single-character string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        const ARITY: usize = 0 $( + { let _ = $idx; 1 } )+;
                        if items.len() != ARITY {
                            return Err(Error::msg(format!(
                                "expected array of {} elements, found {}",
                                ARITY,
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => type_error("array (tuple)", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Serialized as an array of [key, value] pairs: round-trips any
        // key type without requiring string keys.
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect())
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => type_error("array of pairs (map)", other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => type_error("array of pairs (map)", other),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![Value::U64(self.as_secs()), Value::U64(u64::from(self.subsec_nanos()))])
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let (secs, nanos) = <(u64, u32)>::from_value(value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&42u16.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));

        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Some(3u8).to_value()), Ok(Some(3)));

        let pair = (7u64, "x".to_string());
        assert_eq!(<(u64, String)>::from_value(&pair.to_value()), Ok(pair));

        let mut m = HashMap::new();
        m.insert(1u32, "one".to_string());
        assert_eq!(HashMap::<u32, String>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn get_field_reports_missing() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(get_field::<u64>(&v, "a", "T"), Ok(1));
        assert!(get_field::<u64>(&v, "b", "T").is_err());
        assert_eq!(get_field_or_default::<u64>(&v, "b"), Ok(0));
    }
}
