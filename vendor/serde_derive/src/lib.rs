//! Vendored minimal stand-in for `serde_derive`.
//!
//! Hand-rolled over `proc_macro` tokens (the build environment has no
//! crates.io access, so `syn`/`quote` are unavailable). Parses the derive
//! input into a tiny item model and emits `Serialize` / `Deserialize`
//! impls targeting the Value-based serde stand-in in `vendor/serde`.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * named-field structs (field attrs `#[serde(default)]`, `#[serde(skip)]`);
//! * tuple structs — single-field newtypes serialize transparently,
//!   wider ones as arrays;
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics, lifetimes, and other serde attributes are rejected with a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field of a named struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// Body shape of a struct or enum variant.
enum Fields {
    Named(Vec<Field>),
    /// Tuple fields; the payload is the arity.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading attributes (`#[...]`), returning any `serde(...)`
/// flags seen (`skip`, `default`).
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut skip = false;
    let mut default = false;
    while i < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        // `#` then a bracketed group: `[serde(default)]`, `[doc = ".."]`, ...
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "skip" => skip = true,
                                        "default" => default = true,
                                        other => panic!(
                                            "serde stand-in derive: unsupported attribute \
                                             `#[serde({other})]` (only `skip` and `default` \
                                             are implemented)"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, skip, default)
}

/// Consumes an optional visibility (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level comma-separated items in a token sequence (tuple
/// struct / tuple variant arity). Angle-bracket depth is tracked because
/// `<` / `>` are bare puncts; (), [], {} arrive as atomic groups.
fn count_top_level_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth: i32 = 0;
    let mut count = 1;
    let mut saw_tokens_since_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    saw_tokens_since_comma = true;
                }
                '>' => {
                    depth -= 1;
                    saw_tokens_since_comma = true;
                }
                ',' if depth == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                }
                _ => saw_tokens_since_comma = true,
            },
            _ => saw_tokens_since_comma = true,
        }
    }
    // A trailing comma does not open a new field.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}

/// Parses `{ field: Type, ... }` contents into the field list, honoring
/// per-field visibility and serde attributes. Field types are skipped
/// entirely — generated code lets type inference recover them from the
/// struct definition itself.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip, default) = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, next);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde stand-in derive: expected field name, found {:?}", tokens[i]);
        };
        fields.push(Field { name: name.to_string(), skip, default });
        i += 1;
        // Expect `:`, then consume the type up to a top-level comma.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in derive: expected `:` after field, found {other:?}"),
        }
        let mut depth: i32 = 0;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _, _) = skip_attributes(&tokens, i);
        i = next;
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde stand-in derive: expected variant name, found {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_top_level_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                Fields::Named(fields)
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                panic!("serde stand-in derive: explicit discriminants are not supported");
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _, _) = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let TokenTree::Ident(keyword) = &tokens[i] else {
        panic!("serde stand-in derive: expected `struct` or `enum`, found {:?}", tokens[i]);
    };
    let keyword = keyword.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde stand-in derive: expected item name, found {:?}", tokens[i]);
    };
    let name = name.to_string();
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde stand-in derive: generic type `{name}` is not supported \
                 (write the impls by hand or monomorphize)"
            );
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { name, fields: Fields::Named(parse_named_fields(g)) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Struct { name, fields: Fields::Tuple(count_top_level_fields(&inner)) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Item::Struct { name, fields: Fields::Unit }
            }
            other => panic!("serde stand-in derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_enum_variants(g) }
            }
            other => panic!("serde stand-in derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde stand-in derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    \
                 fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Named(fields) => {
                    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                    if live.is_empty() {
                        out.push_str("        ::serde::Value::Map(::std::vec::Vec::new())\n");
                    } else {
                        out.push_str(
                            "        let mut m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in live {
                            out.push_str(&format!(
                                "        m.push((::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_value(&self.{0})));\n",
                                f.name
                            ));
                        }
                        out.push_str("        ::serde::Value::Map(m)\n");
                    }
                }
                Fields::Tuple(1) => {
                    out.push_str("        ::serde::Serialize::to_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    out.push_str("        ::serde::Value::Seq(::std::vec![\n");
                    for idx in 0..*n {
                        out.push_str(&format!(
                            "            ::serde::Serialize::to_value(&self.{idx}),\n"
                        ));
                    }
                    out.push_str("        ])\n");
                }
                Fields::Unit => {
                    out.push_str("        ::serde::Value::Null\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    \
                 fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            {name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Seq(::std::vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        out.push_str(&format!(
                            "            {name}::{vn}({binds_pat}) => \
                             ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binds_pat = binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let pat =
                            fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>().join(", ");
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let entries = live
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let skipped = fields
                            .iter()
                            .filter(|f| f.skip)
                            .map(|f| format!("let _ = {};\n                ", f.name))
                            .collect::<String>();
                        out.push_str(&format!(
                            "            {name}::{vn} {{ {pat} }} => {{\n                \
                             {skipped}::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(::std::vec![{entries}]))])\n            }}\n"
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for {name} {{\n    \
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Named(fields) => {
                    out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
                    for f in fields {
                        if f.skip {
                            out.push_str(&format!(
                                "            {}: ::std::default::Default::default(),\n",
                                f.name
                            ));
                        } else if f.default {
                            out.push_str(&format!(
                                "            {0}: ::serde::get_field_or_default(value, \
                                 \"{0}\")?,\n",
                                f.name
                            ));
                        } else {
                            out.push_str(&format!(
                                "            {0}: ::serde::get_field(value, \"{0}\", \
                                 \"{name}\")?,\n",
                                f.name
                            ));
                        }
                    }
                    out.push_str("        })\n");
                }
                Fields::Tuple(1) => {
                    out.push_str(&format!(
                        "        ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_value(value)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    let elems = (0..*n)
                        .map(|i| format!("::serde::seq_elem(value, {i}, \"{name}\")?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push_str(&format!("        ::std::result::Result::Ok({name}({elems}))\n"));
                }
                Fields::Unit => {
                    out.push_str(&format!("        ::std::result::Result::Ok({name})\n"));
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for {name} {{\n    \
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            let unit: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.fields, Fields::Unit)).collect();
            let data: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.fields, Fields::Unit)).collect();
            if !unit.is_empty() {
                out.push_str("        if let ::serde::Value::Str(s) = value {\n");
                out.push_str("            match s.as_str() {\n");
                for v in &unit {
                    out.push_str(&format!(
                        "                \"{0}\" => return ::std::result::Result::Ok(\
                         {name}::{0}),\n",
                        v.name
                    ));
                }
                out.push_str("                _ => {}\n            }\n        }\n");
            }
            if !data.is_empty() {
                out.push_str(
                    "        if let ::serde::Value::Map(entries) = value {\n            \
                     if entries.len() == 1 {\n                \
                     let (tag, inner) = (&entries[0].0, &entries[0].1);\n                \
                     match tag.as_str() {\n",
                );
                for v in &data {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => out.push_str(&format!(
                            "                    \"{vn}\" => return \
                             ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            let elems = (0..*n)
                                .map(|i| {
                                    format!("::serde::seq_elem(inner, {i}, \"{name}::{vn}\")?")
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            out.push_str(&format!(
                                "                    \"{vn}\" => return \
                                 ::std::result::Result::Ok({name}::{vn}({elems})),\n"
                            ));
                        }
                        Fields::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: ::std::default::Default::default()", f.name)
                                    } else if f.default {
                                        format!(
                                            "{0}: ::serde::get_field_or_default(inner, \
                                             \"{0}\")?",
                                            f.name
                                        )
                                    } else {
                                        format!(
                                            "{0}: ::serde::get_field(inner, \"{0}\", \
                                             \"{name}::{vn}\")?",
                                            f.name
                                        )
                                    }
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            out.push_str(&format!(
                                "                    \"{vn}\" => return \
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),\n"
                            ));
                        }
                        Fields::Unit => unreachable!(),
                    }
                }
                out.push_str(
                    "                    _ => {}\n                }\n            }\n        }\n",
                );
            }
            out.push_str(&format!(
                "        ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown {name} variant encoding: {{value:?}}\")))\n    }}\n}}\n"
            ));
        }
    }
    out
}

/// Derives `Serialize` for the Value-based serde stand-in.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stand-in derive: generated Serialize impl failed to tokenize")
}

/// Derives `Deserialize` for the Value-based serde stand-in.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stand-in derive: generated Deserialize impl failed to tokenize")
}
