//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Deterministic, seeded random property testing with proptest's surface
//! syntax: the [`proptest!`] macro (`fn name(arg in strategy, ..) { .. }`
//! with an optional `#![proptest_config(..)]`), the [`strategy::Strategy`]
//! trait (`prop_map`, `prop_flat_map`), range / tuple / `Vec` strategies,
//! [`collection::vec`], [`option::of`], [`any`], and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (failures print the full generated inputs instead),
//! no persisted failure seeds (runs are deterministic per test), and
//! strategies sample uniformly rather than with proptest's bias toward
//! edge cases.

#![forbid(unsafe_code)]

use std::fmt::Debug;

#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::Debug;
    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// produces for it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Filters generated values; retries until `pred` passes (caps at
        /// 1000 attempts, then panics — mirror real proptest's rejection
        /// cap by keeping filters loose).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, pred }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive samples", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A size specification: an exact length or a range of lengths.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy { element, size: Box::new(size) }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Strategy for `Option<T>`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Debug + Sized {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding uniformly random values of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uniform {
    ($($t:ty => |$rng:ident| $body:expr;)*) => {$(
        impl strategy::Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, $rng: &mut rand::rngs::StdRng) -> $t {
                $body
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uniform! {
    bool => |rng| rand::RngCore::next_u64(rng) & 1 == 1;
    u8 => |rng| rand::RngCore::next_u64(rng) as u8;
    u16 => |rng| rand::RngCore::next_u64(rng) as u16;
    u32 => |rng| rand::RngCore::next_u64(rng) as u32;
    u64 => |rng| rand::RngCore::next_u64(rng);
    i32 => |rng| rand::RngCore::next_u64(rng) as i32;
    i64 => |rng| rand::RngCore::next_u64(rng) as i64;
}

/// The canonical strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (failure aborts the case and
/// reports the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a test running `cases` random cases; on failure the generated
/// inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Deterministic per-test seed: tests are reproducible
                // without a persistence file.
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        0x5274_434d_0001_u64,
                    );
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __inputs = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(::std::stringify!($arg));
                            __s.push_str(" = ");
                            __s.push_str(&::std::format!("{:?}", &$arg));
                            __s.push_str("; ");
                        )+
                        __s
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body }),
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        ::std::eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs: {}",
                            __case + 1,
                            __config.cases,
                            ::std::stringify!($name),
                            __inputs
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = (1u64..10, 0u16..3, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!(b < 3);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = collection::vec(0u32..5, 2..6usize);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn option_of_yields_both_arms() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = option::of(0u32..5);
        let samples: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_some));
        assert!(samples.iter().any(Option::is_none));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(a in 0u64..100, items in collection::vec(0u8..10, 1..4)) {
            prop_assert!(a < 100);
            prop_assert_eq!(items.len(), items.len());
            prop_assert_ne!(items.len(), 0, "vec size starts at 1");
        }
    }

    proptest! {
        #[test]
        fn flat_map_and_map_compose(n in (1usize..4).prop_flat_map(|k| {
            crate::collection::vec(0u32..10, k..k + 1)
        }).prop_map(|v| v.len())) {
            prop_assert!((1..4).contains(&n));
        }
    }
}
