//! Vendored minimal stand-in for the `rand` crate.
//!
//! The workspace only needs deterministic, seedable pseudo-randomness for
//! workload generation and delay jitter, so this crate provides a
//! [`rngs::StdRng`] backed by SplitMix64 together with the
//! [`SeedableRng::seed_from_u64`] / [`Rng::gen_range`] subset of the real
//! API. Sequences differ from upstream rand's ChaCha-based `StdRng`, but
//! every draw is deterministic per seed, which is the property the
//! experiments rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// An RNG that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`Range` or `RangeInclusive` over
    /// the supported integer types and `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a `f64` in `[0, 1)` (53-bit mantissa method).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let draw = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + draw) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let draw = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let v = (self.start as f64..self.end as f64).sample_single(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Seedable RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (Steele, Lea & Flood;
    /// passes BigCrush for this use). Not cryptographically secure, and
    /// not stream-compatible with upstream rand's `StdRng` — only
    /// determinism per seed is promised.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: u16 = rng.gen_range(0..3);
            assert!(w < 3);
            let s: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn full_range_coverage_small_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
